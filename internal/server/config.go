package server

import (
	"fmt"
	"runtime"
	"time"

	"cisgraph/internal/core"
	"cisgraph/internal/resilience"
)

// OverflowPolicy selects what Offer does when the bounded ingest queue is
// full.
type OverflowPolicy int

const (
	// OverflowReject refuses the incoming updates (HTTP 429): nothing
	// already queued is lost, the client is asked to back off.
	OverflowReject OverflowPolicy = iota
	// OverflowShed drops the *oldest* queued updates to make room for the
	// incoming ones — load shedding that favors fresh data. Every dropped
	// update is counted (CntShedUpdates).
	OverflowShed
)

// String returns the CLI spelling of the policy.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowReject:
		return "reject"
	case OverflowShed:
		return "shed"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParseOverflowPolicy resolves a CLI spelling ("reject", "shed").
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "reject":
		return OverflowReject, nil
	case "shed":
		return OverflowShed, nil
	default:
		return 0, fmt.Errorf("server: unknown overflow policy %q (want reject or shed)", s)
	}
}

// Config tunes the serving layer. The zero value is usable: WithDefaults
// fills every unset field with the documented default.
type Config struct {
	// BatchMaxSize cuts a batch as soon as this many updates are gathered
	// (the paper's assigned ingestion threshold, §II-A). Default 512.
	BatchMaxSize int
	// BatchMaxWait cuts a non-empty batch after this long even if the size
	// threshold was not reached, bounding staleness under a trickle of
	// updates. Default 25ms.
	BatchMaxWait time.Duration
	// QueueCapacity bounds the ingest queue (admission control). Default
	// 65536 updates.
	QueueCapacity int
	// OnFull selects the backpressure behaviour when the queue is full
	// (default OverflowReject).
	OnFull OverflowPolicy
	// RequestTimeout bounds each HTTP request's handler time (default 10s).
	// Every endpoint runs under a context carrying this deadline; a handler
	// that overruns gets 503 and its context cancelled.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds POST request bodies (http.MaxBytesReader; default
	// 8 MiB). Oversized bodies get 413 without buffering the excess.
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently executing /v1/* requests (admission
	// control; default 256). Requests beyond the gate are shed with 429 +
	// Retry-After before they can pile onto the batcher. /healthz and
	// /metrics bypass the gate so operators can always observe the server.
	MaxInFlight int
	// Shards is the number of query-pool shards; registered queries are
	// spread across them and each shard applies batches on its own
	// goroutine. Default 1.
	Shards int
	// Workers bounds the per-shard worker pool that processes a shard's
	// queries during batch application (core.WithWorkers). Default
	// GOMAXPROCS; 1 runs a shard's queries serially.
	Workers int
	// Store selects the per-query state representation for every shard
	// engine (core.WithStore): core.StoreDense (default) keeps O(V) flat
	// arrays per query; core.StoreSparse overlays paged deltas on a shared
	// converged baseline, collapsing the footprint when many queries share
	// sources.
	Store core.StoreKind
	// MaxQueries caps registered queries across all shards (admission
	// control; default 1024).
	MaxQueries int
	// Policy is the ingestion sanitize policy (default resilience.PolicyDrop).
	// Every batch is validated against the server's shadow topology before
	// any engine sees it.
	Policy resilience.Policy
	// WALPath is the segmented write-ahead log directory: every sanitized
	// batch is appended (and fsynced) there before it is applied ("" disables
	// durability). A legacy single-file CGWALOG1 log at this path is
	// migrated in place on open, so pre-segmentation data dirs keep working.
	WALPath string
	// WALSegmentBytes rolls the WAL to a new segment at this size (default
	// 4 MiB). Smaller segments mean finer-grained retention.
	WALSegmentBytes int64
	// WALRetain keeps at least this many sealed WAL segments through
	// checkpoint-coordinated retention (operator slack; default 0).
	WALRetain int
	// CheckpointPath is where drain (and, with CheckpointEvery, periodic)
	// checkpoints are written ("" disables). After a successful checkpoint,
	// WAL segments wholly covered by it are deleted, bounding disk usage
	// and crash-recovery replay length.
	CheckpointPath string
	// CheckpointEvery writes a checkpoint every N applied batches (0 = only
	// at drain). Requires CheckpointPath.
	CheckpointEvery int
	// DiskRetryBase / DiskRetryMax shape the degraded-mode disk retry loop:
	// after a durable-write failure trips the breaker, the disk is probed
	// with jittered exponential backoff from DiskRetryBase up to
	// DiskRetryMax (defaults 100ms / 5s).
	DiskRetryBase time.Duration
	DiskRetryMax  time.Duration
	// FS is the filesystem seam for WAL and checkpoint writes (default the
	// real filesystem). Tests inject a resilience.FaultFS to exercise
	// degraded mode deterministically.
	FS resilience.FS
	// FollowURL switches the server into follower mode (DESIGN.md §13): it
	// bootstraps from this leader's checkpoint, tails its WAL, and serves
	// reads only — writes are refused with 421 + the leader's location.
	// A follower without WALPath is stateless; setting WALPath (and usually
	// CheckpointPath) makes it PROMOTABLE (DESIGN.md §17): every replicated
	// record is written to its own durable log, so /v1/admin/promote can
	// seal the log at the durable prefix and take over as leader.
	FollowURL string
	// Peers lists every cluster member's base URL in deterministic promotion
	// priority order (highest priority first). The promote-on-leader-loss
	// watchdog ranks candidates by it, and deposed or orphaned nodes probe it
	// to locate the current leader by epoch.
	Peers []string
	// AdvertiseURL is this node's own base URL as it appears in Peers; the
	// watchdog needs it to know the node's promotion rank, and peer probes
	// skip it.
	AdvertiseURL string
	// PromoteOnLeaderLoss arms the follower watchdog: when the leader stays
	// unreachable for PromoteAfter scaled by the node's rank in Peers, the
	// follower promotes itself — unless a higher-epoch leader is discovered
	// among Peers first, in which case it re-points its tail there. Requires
	// a promotable follower (FollowURL + WALPath).
	PromoteOnLeaderLoss bool
	// PromoteAfter is the watchdog's base leader-loss patience (default 2s).
	// Rank r in Peers waits PromoteAfter × (r+1), so candidates promote in a
	// deterministic order instead of racing.
	PromoteAfter time.Duration
	// SyncFollowers gates fast-path (binary ingest) acks on replication: an
	// update is acked OK only once at least this many follower tail positions
	// have passed its commit — "acked means durable on the serving leader,
	// across failover". 0 (the default) acks on local fsync alone.
	SyncFollowers int
	// SyncAckTimeout bounds how long a replication-gated ack may wait for
	// followers before it is refused with a Degraded status (the client
	// retries; session dedup absorbs the replay). Default 5s.
	SyncAckTimeout time.Duration
	// DedupSessions bounds the exactly-once session table (session id →
	// highest accepted seq); least-recently-advanced sessions are evicted
	// beyond it. Default 1024.
	DedupSessions int
	// MaxStaleness is the follower's degraded threshold: when the time since
	// the follower last confirmed it was caught up exceeds this, /healthz
	// reports degraded (0 = never degrade on staleness). Reads still serve —
	// stamped with X-CISGraph-Staleness — unless the client bounds its own
	// staleness via the X-CISGraph-Max-Staleness request header.
	MaxStaleness time.Duration
	// ReplLongPoll bounds how long a leader parks a caught-up follower's
	// tail request, and the follower's per-request deadline grows from it
	// (default 10s). Lower values tighten failover detection in tests.
	ReplLongPoll time.Duration
	// ReplBackoffBase / ReplBackoffMax shape the follower's jittered
	// exponential reconnect backoff (defaults 100ms / 5s).
	ReplBackoffBase time.Duration
	ReplBackoffMax  time.Duration
	// ReplSeed seeds the follower's backoff jitter so chaos runs reproduce
	// (default 1).
	ReplSeed int64
	// FastGroupMax bounds how many updates the per-update fast path gathers
	// into one group commit (one WAL fsync); default 512. A lone update
	// still commits immediately — the bound only caps burst amortization.
	FastGroupMax int
	// FastPendingFrames bounds the fast path's admission queue, in frames;
	// a full queue blocks binary readers (TCP backpressure). Default 1024.
	FastPendingFrames int
	// FastPipelineDepth bounds unacked frames per binary connection (the
	// per-connection ack queue). Default 256.
	FastPipelineDepth int
	// PropagateWorkers is each shard engine's intra-query relax-worker
	// budget (core.WithPropagateWorkers, DESIGN.md §16): cold starts drain
	// with the full budget, and each batch splits it across the queries
	// actually processed. 0 or 1 (the default) keeps every drain serial —
	// answers are bit-identical either way, so the knob is pure performance.
	PropagateWorkers int
	// ParallelFrontierMin is the propagation-frontier size that triggers a
	// parallel drain when PropagateWorkers is set (default
	// core.DefaultParallelFrontierMin); smaller frontiers always stay
	// serial.
	ParallelFrontierMin int
	// DisableChangeSkip turns off change-driven query skipping in the shard
	// engines (DESIGN.md §15), forcing every registered query through the
	// full per-batch phases. Production keeps it off; differential tests and
	// benchmarks flip it to compare against exhaustive evaluation.
	DisableChangeSkip bool
	// WatchQueue bounds each /v1/watch subscriber's pending-delta queue, in
	// messages (default 64). A subscriber that falls further behind is
	// marked lost and receives a resync marker instead of unbounded buffering.
	WatchQueue int
	// MaxWatchers caps concurrent /v1/watch subscribers (admission control;
	// default 4096). Beyond the cap, new subscriptions are shed with 429.
	MaxWatchers int
}

// WithDefaults returns a copy of c with every unset field defaulted.
func (c Config) WithDefaults() Config {
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 512
	}
	if c.BatchMaxWait <= 0 {
		c.BatchMaxWait = 25 * time.Millisecond
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 65536
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.WALSegmentBytes <= 0 {
		c.WALSegmentBytes = 4 << 20
	}
	if c.DiskRetryBase <= 0 {
		c.DiskRetryBase = 100 * time.Millisecond
	}
	if c.DiskRetryMax <= 0 {
		c.DiskRetryMax = 5 * time.Second
	}
	if c.FS == nil {
		c.FS = resilience.OsFS{}
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 1024
	}
	if c.ReplLongPoll <= 0 {
		c.ReplLongPoll = 10 * time.Second
	}
	if c.ReplBackoffBase <= 0 {
		c.ReplBackoffBase = 100 * time.Millisecond
	}
	if c.ReplBackoffMax <= 0 {
		c.ReplBackoffMax = 5 * time.Second
	}
	if c.ReplSeed == 0 {
		c.ReplSeed = 1
	}
	if c.FastGroupMax <= 0 {
		c.FastGroupMax = 512
	}
	if c.FastPendingFrames <= 0 {
		c.FastPendingFrames = 1024
	}
	if c.FastPipelineDepth <= 0 {
		c.FastPipelineDepth = 256
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 2 * time.Second
	}
	if c.SyncAckTimeout <= 0 {
		c.SyncAckTimeout = 5 * time.Second
	}
	if c.DedupSessions <= 0 {
		c.DedupSessions = 1024
	}
	if c.WatchQueue <= 0 {
		c.WatchQueue = 64
	}
	if c.MaxWatchers <= 0 {
		c.MaxWatchers = 4096
	}
	return c
}

// Validate rejects configurations the server cannot honor.
func (c Config) Validate() error {
	if c.CheckpointEvery > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("server: CheckpointEvery set without CheckpointPath")
	}
	if c.BatchMaxSize > c.QueueCapacity {
		return fmt.Errorf("server: BatchMaxSize %d exceeds QueueCapacity %d",
			c.BatchMaxSize, c.QueueCapacity)
	}
	if c.FollowURL != "" && c.CheckpointPath != "" && c.WALPath == "" {
		// A promotable follower's checkpoint is only meaningful together with
		// the local log it coordinates retention against; a checkpoint alone
		// would shadow the leader's state without being resumable.
		return fmt.Errorf("server: promotable follower needs WALPath alongside CheckpointPath")
	}
	if c.PromoteOnLeaderLoss && c.WALPath == "" {
		// The watchdog only runs on followers, but the flag is legal on a
		// leader: cluster nodes share one flag set, and a deposed leader
		// restarts as a follower with it armed. A local WAL is what makes
		// promotion possible at all, so that part stays required.
		return fmt.Errorf("server: PromoteOnLeaderLoss requires a local WAL (WALPath) to be promotable")
	}
	if c.SyncFollowers > 0 && c.WALPath == "" {
		return fmt.Errorf("server: SyncFollowers requires WALPath (followers replicate the WAL)")
	}
	return nil
}
