package server

import (
	"math"
	"sort"
	"sync"
)

// dedupSession is one exactly-once ingest session: the highest sequence
// number ever accepted from a client session id. This is also the
// checkpoint-payload form (CGSRVS2); sessions persist least-recently-
// advanced first so a restore rebuilds the same eviction order.
type dedupSession struct {
	SID uint64
	Seq uint64
}

// dedupTable is the exactly-once session table (DESIGN.md §17). CGBIN/2
// clients stamp every update with a (session id, sequence number) pair; the
// table remembers, per session, the highest sequence number ACCEPTED — i.e.
// appended to the WAL — so a client that replays un-acked updates after a
// reconnect or a leader failover can never double-apply one.
//
// Determinism rule: the table advances only on accepted updates, in commit
// order, and evicts the least-recently-advanced session when over capacity.
// Both are functions of the durable record stream alone, so the live table
// always equals the table a crash replay rebuilds (checkpoint sessions plus
// WAL session-tag replay) — the same argument that makes served answers
// equal replayed answers.
type dedupTable struct {
	mu    sync.Mutex
	cap   int
	seq   map[uint64]uint64 // sid → highest accepted seq
	touch map[uint64]uint64 // sid → tick of the last advance
	clock uint64
}

func newDedupTable(capacity int) *dedupTable {
	if capacity <= 0 {
		capacity = 1024
	}
	return &dedupTable{
		cap:   capacity,
		seq:   make(map[uint64]uint64),
		touch: make(map[uint64]uint64),
	}
}

// dup reports whether (sid, seq) was already accepted. Session id 0 is the
// untagged sentinel (CGBIN/1, batch path) and never deduplicates.
func (d *dedupTable) dup(sid, seq uint64) bool {
	if sid == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	have, ok := d.seq[sid]
	return ok && seq <= have
}

// advance records that (sid, seq) was accepted and made durable. Call in
// commit order, after the WAL append succeeds — never before, or the live
// table could run ahead of what a crash replay reconstructs.
func (d *dedupTable) advance(sid, seq uint64) {
	if sid == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if have, ok := d.seq[sid]; !ok || seq > have {
		d.seq[sid] = seq
	}
	d.clock++
	d.touch[sid] = d.clock
	for len(d.seq) > d.cap {
		d.evictLocked()
	}
}

// evictLocked drops the least-recently-advanced session. O(n) scan — the
// table is small (DedupSessions, default 1024) and eviction is rare.
func (d *dedupTable) evictLocked() {
	var victim uint64
	oldest := uint64(math.MaxUint64)
	for sid, tick := range d.touch {
		if tick < oldest {
			oldest, victim = tick, sid
		}
	}
	delete(d.seq, victim)
	delete(d.touch, victim)
}

// snapshot returns the sessions least-recently-advanced first — the
// checkpoint persistence order load reconstructs from.
func (d *dedupTable) snapshot() []dedupSession {
	d.mu.Lock()
	defer d.mu.Unlock()
	type entry struct {
		s    dedupSession
		tick uint64
	}
	entries := make([]entry, 0, len(d.seq))
	for sid, seq := range d.seq {
		entries = append(entries, entry{dedupSession{SID: sid, Seq: seq}, d.touch[sid]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].tick < entries[j].tick })
	out := make([]dedupSession, len(entries))
	for i, e := range entries {
		out[i] = e.s
	}
	return out
}

// load replaces the table with sessions, treating their order as the
// advance order (oldest first) so later evictions replay identically.
func (d *dedupTable) load(sessions []dedupSession) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq = make(map[uint64]uint64, len(sessions))
	d.touch = make(map[uint64]uint64, len(sessions))
	d.clock = 0
	for _, s := range sessions {
		if s.SID == 0 {
			continue
		}
		d.clock++
		d.seq[s.SID] = s.Seq
		d.touch[s.SID] = d.clock
	}
	for len(d.seq) > d.cap {
		d.evictLocked()
	}
}

// size reports the live session count (metrics).
func (d *dedupTable) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seq)
}
