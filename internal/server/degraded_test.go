package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/resilience"
)

// faultConfig is testServerConfig plus a FaultFS-backed durability layer and
// a fast breaker retry loop, so degraded-mode transitions happen in
// milliseconds.
func faultConfig(t *testing.T, ffs *resilience.FaultFS) Config {
	t.Helper()
	dir := t.TempDir()
	cfg := testServerConfig()
	cfg.WALPath = filepath.Join(dir, "srv.wal")
	cfg.CheckpointPath = filepath.Join(dir, "srv.ckpt")
	cfg.FS = ffs
	cfg.DiskRetryBase = 2 * time.Millisecond
	cfg.DiskRetryMax = 20 * time.Millisecond
	return cfg
}

// Degraded mode, end to end with deterministic fault injection: a failing
// disk trips the breaker (503 on updates, reads keep serving, healthz says
// degraded), healing the disk closes it via the background probe loop, and
// the answers served afterwards are exactly the replay of the durable WAL
// prefix — the batch that hit the sick disk was dropped, never applied.
func TestServerDegradedModeFaultInjection(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	ffs := resilience.NewFaultFS(resilience.OsFS{})
	cfg := faultConfig(t, ffs)

	srv, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var qs []core.Query
	for _, p := range w.QueryPairsConnected(4) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	for _, q := range qs {
		if resp, body := postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register query: status %d: %s", resp.StatusCode, body)
		}
	}

	// Healthy phase: a few batches flow through WAL and engines.
	for i := 0; i < 3; i++ {
		postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	}
	waitQuiescedSrv(t, srv)

	// Break the disk and push a batch into it: the applier's WAL append
	// fails, the batch is dropped, and the breaker opens.
	ffs.FailWrites(errors.New("injected: disk full"))
	postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	waitFor(t, 10*time.Second, srv.brk.Open, "breaker to open")

	// Writes are refused at the door with 503 + Retry-After…
	resp, _ := postJSON(t, client, ts.URL+"/v1/updates", updatesRequest{
		Updates: []updateJSON{{Op: "add", From: 0, To: 1, W: 1}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST /v1/updates: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 without Retry-After")
	}
	// …while reads keep serving…
	var ans answersResponse
	if r := getJSON(t, client, ts.URL+"/v1/answers", &ans); r.StatusCode != http.StatusOK {
		t.Fatalf("degraded GET /v1/answers: status %d, want 200", r.StatusCode)
	}
	if len(ans.Answers) != len(qs) {
		t.Fatalf("degraded answers: %d, want %d", len(ans.Answers), len(qs))
	}
	// …and health reports the degradation with its reason.
	var hz healthzResponse
	getJSON(t, client, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" || !strings.Contains(hz.DegradedReason, "disk full") {
		t.Fatalf("degraded healthz: status %q reason %q", hz.Status, hz.DegradedReason)
	}
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mbuf.String(), "cisgraph_degraded 1") {
		t.Error("metrics missing cisgraph_degraded 1 while degraded")
	}
	if snap := srv.Counters().Snapshot(); snap[CntBatchesDroppedDegraded] == 0 {
		t.Error("no dropped-batch count after degraded drop")
	}

	// Heal the disk: the background probe closes the breaker and ingest
	// resumes without a restart.
	ffs.Heal()
	waitFor(t, 10*time.Second, func() bool { return !srv.brk.Open() }, "breaker to close")
	if srv.brk.Probes() == 0 {
		t.Error("breaker closed without any probe")
	}
	postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	waitQuiescedSrv(t, srv)
	getJSON(t, client, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("healed healthz: status %q, want ok", hz.Status)
	}

	// Consistency invariant: served answers ≡ offline replay of the durable
	// WAL prefix over the initial topology. The dropped batch is in neither.
	recs, err := resilience.ReplaySegmentedFS(ffs, cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != srv.Applied() {
		t.Fatalf("WAL holds %d records, server applied %d", len(recs), srv.Applied())
	}
	ref := core.NewMultiCISO()
	ref.Reset(w.Initial(), a, qs)
	for _, rec := range recs {
		ref.ApplyBatch(rec.Batch)
	}
	checkAnswers(t, client, ts.URL, qs, ref.Answers(), "post-heal durable replay")

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// A checkpoint-write failure also trips the breaker, and recovery resumes
// periodic checkpoints.
func TestServerCheckpointFaultTripsBreaker(t *testing.T) {
	w := testWorkload(t)
	ffs := resilience.NewFaultFS(resilience.OsFS{})
	cfg := faultConfig(t, ffs)
	cfg.CheckpointEvery = 1 // every batch checkpoints

	srv, err := New(w.Initial(), testAlgo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	waitQuiescedSrv(t, srv)

	// Let the WAL append through, then kill the checkpoint's writes: the
	// append is 2 ops (write+sync); everything after fails.
	ffs.FailAfterWrites(2, errors.New("injected: checkpoint device error"))
	postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	waitFor(t, 10*time.Second, srv.brk.Open, "breaker to open on checkpoint failure")

	ffs.Heal()
	waitFor(t, 10*time.Second, func() bool { return !srv.brk.Open() }, "breaker to close")
	postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	waitQuiescedSrv(t, srv)
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	if _, _, err := resilience.ReadCheckpointFile(cfg.CheckpointPath); err != nil {
		t.Fatalf("no readable checkpoint after heal: %v", err)
	}
}

// Checkpoint-coordinated retention in-process: with tiny segments and
// frequent checkpoints, sealed segments wholly covered by the checkpoint are
// deleted, the WAL stays bounded, and a Restore from the retained artefacts
// still reproduces the answers.
func TestServerWALRetentionAcrossCheckpoints(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	dir := t.TempDir()
	cfg := testServerConfig()
	cfg.WALPath = filepath.Join(dir, "srv.wal")
	cfg.CheckpointPath = filepath.Join(dir, "srv.ckpt")
	cfg.WALSegmentBytes = 64 // minimum: roughly one batch per segment
	cfg.CheckpointEvery = 2

	srv, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	var qs []core.Query
	for _, p := range w.QueryPairsConnected(3) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	for _, q := range qs {
		postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D})
	}
	for i := 0; i < 10; i++ {
		postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
		waitQuiescedSrv(t, srv)
	}
	snap := srv.Counters().Snapshot()
	if snap[CntWALSegmentsDeleted] == 0 {
		t.Fatalf("10 batches with CheckpointEvery=2 and 64-byte segments deleted no WAL segments (%d applied, %d checkpoints)",
			srv.Applied(), snap[CntCheckpoints])
	}

	// Post-checkpoint invariant: no sealed segment is wholly covered by the
	// checkpoint — the durable artefacts carry no dead weight.
	ts.Close()
	if err := srv.Drain(); err != nil { // drain checkpoints at the final index
		t.Fatal(err)
	}
	through, _, err := resilience.ReadCheckpointFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := resilience.ReplaySegmented(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:max(len(recs)-1, 0)] {
		_ = rec // all but possibly trailing records may survive inside the last retained segments
	}
	if len(recs) > 0 && recs[0].Index == 0 && through > 0 {
		// Retention must have removed the segment holding record 0 once the
		// checkpoint covered it (CheckpointEvery=2 guarantees coverage).
		t.Fatalf("WAL still holds record 0 after checkpoint through %d", through)
	}

	// Restore from the retained artefacts and check the answers survive.
	srv2, err := Restore(a, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Applied() != srv.Applied() {
		t.Fatalf("restore applied %d, drained server %d", srv2.Applied(), srv.Applied())
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var got, want answersResponse
	getJSON(t, ts2.Client(), ts2.URL+"/v1/answers", &got)
	want.Answers = make([]answerJSON, len(qs))
	ref := core.NewMultiCISO()
	g, queries, err := restoreTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Reset(g, a, queries)
	for i, v := range ref.Answers() {
		if float64(got.Answers[i].Value) != v {
			t.Errorf("restored Q(%d->%d): served %v, offline %v",
				got.Answers[i].S, got.Answers[i].D, float64(got.Answers[i].Value), v)
		}
	}
	if err := srv2.Drain(); err != nil {
		t.Fatal(err)
	}
}

// restoreTopology rebuilds the durable state offline: checkpoint topology +
// WAL suffix — the same recovery recipe the daemon uses, but through the
// exported surfaces only.
func restoreTopology(cfg Config) (*graph.Dynamic, []core.Query, error) {
	through, payload, err := resilience.ReadCheckpointFile(cfg.CheckpointPath)
	if err != nil {
		return nil, nil, err
	}
	g, queries, err := DecodeCheckpointState(payload)
	if err != nil {
		return nil, nil, err
	}
	recs, err := resilience.ReplaySegmented(cfg.WALPath)
	if err != nil {
		return nil, nil, err
	}
	for _, rec := range recs {
		if rec.Index >= through {
			g.Apply(rec.Batch)
		}
	}
	return g, queries, nil
}

// Admission control: body caps yield 413, a full in-flight gate sheds with
// 429 while /healthz stays reachable, and the deadline middleware kills
// overrunning handlers with 503.
func TestServerAdmissionControl(t *testing.T) {
	w := testWorkload(t)
	cfg := testServerConfig()
	cfg.MaxBodyBytes = 256
	cfg.MaxInFlight = 2
	srv, err := New(w.Initial(), testAlgo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Oversized POST body → 413.
	big := make([]updateJSON, 64)
	for i := range big {
		big[i] = updateJSON{Op: "add", From: 0, To: uint32(i + 1), W: 1}
	}
	resp, _ := postJSON(t, client, ts.URL+"/v1/updates", updatesRequest{Updates: big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if snap := srv.Counters().Snapshot(); snap[CntBodyTooLarge] == 0 {
		t.Error("413 did not count CntBodyTooLarge")
	}

	// Fill the gate: /v1/* sheds with 429 + Retry-After, /healthz still
	// answers (it bypasses the gate by design).
	for i := 0; i < cfg.MaxInFlight; i++ {
		srv.gate <- struct{}{}
	}
	if r := getJSON(t, client, ts.URL+"/v1/answers", nil); r.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full gate: status %d, want 429", r.StatusCode)
	} else if r.Header.Get("Retry-After") == "" {
		t.Error("shed 429 without Retry-After")
	}
	var hz healthzResponse
	if r := getJSON(t, client, ts.URL+"/healthz", &hz); r.StatusCode != http.StatusOK {
		t.Errorf("healthz behind full gate: status %d, want 200", r.StatusCode)
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		<-srv.gate
	}
	if snap := srv.Counters().Snapshot(); snap[CntInflightShed] == 0 {
		t.Error("shed request did not count CntInflightShed")
	}

	// Deadline middleware: an overrunning handler is cut off with 503 and
	// counted.
	slow := srv.withDeadline(10*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	slowTS := httptest.NewServer(slow)
	defer slowTS.Close()
	sresp, err := slowTS.Client().Get(slowTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("deadline overrun: status %d, want 503", sresp.StatusCode)
	}
	if snap := srv.Counters().Snapshot(); snap[CntRequestTimeouts] == 0 {
		t.Error("deadline kill did not count CntRequestTimeouts")
	}
}
