package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/resilience"
)

// Leader-failover chaos harness (DESIGN.md §17): a 3-node cluster takes a
// CGBIN/2 session-tagged binary stream while the leader is SIGKILLed
// mid-ingest, round after round. Each round a follower is promoted (the
// first two rounds explicitly via /v1/admin/promote picking the longest
// log, the last by the -promote-on-leader-loss watchdog), the deposed
// leader rejoins and must demote through the epoch fence, and the client
// reconnects and replays its un-acked updates with the same sequence
// numbers.
//
// What makes the run pass/fail is discrete, not statistical: every update
// carries (session, seq), each accepted update is its own WAL record
// carrying that tag, and the stream is constructed to be sanitizer-clean
// IF AND ONLY IF it is applied exactly once in order (presence-tracked
// adds and deletes — a duplicated add becomes a DupAdd drop, a lost delete
// turns the next add into one). So at the end:
//
//   - the surviving durable chain (checkpoint session table + WAL records)
//     must cover sequence numbers contiguously up to N: a duplicate commit
//     or a lost acked update breaks contiguity and fails the walk;
//   - served answers must be byte-identical across all nodes and equal to
//     BOTH an offline replay of the durable chain and an independent
//     engine fed the generated stream exactly once;
//   - re-sending an already-acked frame must be re-acked as accepted
//     without minting new stream positions (dedup counter corroboration).
const (
	failoverSID    = 0xC15D
	failoverN      = 2000
	failoverFrame  = 16
	failoverWindow = 8
)

type failoverNode struct {
	addr    string // host:port for HTTP
	base    string // http://addr
	binAddr string
	walDir  string
	ckpt    string
	cmd     *exec.Cmd
	log     *bytes.Buffer
}

func TestChaosLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos skipped in -short")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	client := &http.Client{Timeout: 5 * time.Second}
	a, err := algo.ByName("PPSP")
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*failoverNode, 3)
	bases := make([]string, 3)
	for i := range nodes {
		addr := freeAddr(t)
		nodes[i] = &failoverNode{
			addr:    addr,
			base:    "http://" + addr,
			binAddr: freeAddr(t),
			walDir:  filepath.Join(dir, fmt.Sprintf("wal%d", i)),
			ckpt:    filepath.Join(dir, fmt.Sprintf("ckpt%d", i)),
		}
		bases[i] = nodes[i].base
	}
	peerList := strings.Join(bases, ",")
	commonArgs := func(i int) []string {
		n := nodes[i]
		return []string{
			"-standin", "OR", "-scale", "8", "-seed", "7", "-algo", "PPSP",
			"-addr", n.addr, "-binary-addr", n.binAddr,
			"-batch-size", "32", "-batch-wait", "2ms",
			"-wal", n.walDir, "-wal-segment-bytes", "4096",
			"-checkpoint", n.ckpt, "-checkpoint-every", "8",
			"-repl-longpoll", "100ms",
			"-peers", peerList, "-advertise", n.base,
			"-promote-on-leader-loss", "-promote-after", "800ms",
			"-sync-followers", "1", "-sync-ack-timeout", "2s",
		}
	}
	startNode := func(i int, extra ...string) {
		cmd, logBuf := startDaemon(t, bin, append(commonArgs(i), extra...))
		nodes[i].cmd, nodes[i].log = cmd, logBuf
		waitDaemonHealthy(t, client, nodes[i].base, cmd, logBuf)
	}

	startNode(0, "-queries", chaosQueryPairs)
	// Push the leader past its first checkpoint so followers bootstrap from
	// it (inheriting queries and the empty session table).
	seedRng := rand.New(rand.NewSource(99))
	initTopo := graph.FromEdgeList(graph.StandInOR.MustBuild(8, 7))
	ingestUntil(t, client, nodes[0].base, seedRng, initTopo.NumVertices(), 9, nodes[0].log)
	startNode(1, "-follow", nodes[0].base)
	startNode(2, "-follow", nodes[0].base)

	// The generated stream is sanitizer-clean by construction: sim tracks
	// presence exactly as the server's sanitizer does, so any dup/loss on
	// the server makes its presence diverge and shows up as a dropped
	// update in an ack (asserted zero below).
	sim := initTopo.Clone()
	// Catch sim up with the seed ingest by replaying the leader's WAL once
	// it is quiesced — the seed batches went through the sanitizer too.
	leaderBatches := waitLeaderIdle(t, client, nodes[0].base)
	seedThrough, _, seedPayload, err := resilience.ReadCheckpointMeta(nodes[0].ckpt)
	if err != nil {
		t.Fatalf("seed checkpoint: %v", err)
	}
	simG, _, _, err := decodeState(seedPayload)
	if err != nil {
		t.Fatalf("seed checkpoint decode: %v", err)
	}
	sim = simG
	seedRecs, err := resilience.ReplaySegmented(nodes[0].walDir)
	if err != nil {
		t.Fatalf("seed WAL replay: %v", err)
	}
	seedDurable := seedThrough
	for _, rec := range seedRecs {
		if rec.Index < seedThrough {
			continue
		}
		sim.Apply(rec.Batch)
		seedDurable++
	}
	if seedDurable != leaderBatches {
		t.Fatalf("seed durable prefix %d != served batches %d", seedDurable, leaderBatches)
	}

	rng := rand.New(rand.NewSource(0x5e55))
	ups := make([]graph.Update, failoverN)
	nv := sim.NumVertices()
	for i := range ups {
		var u, v graph.VertexID
		for {
			u, v = graph.VertexID(rng.Intn(nv)), graph.VertexID(rng.Intn(nv))
			if u != v {
				break
			}
		}
		if _, ok := sim.HasEdge(u, v); ok {
			ups[i] = graph.Update{Arc: graph.Arc{From: u, To: v}, Del: true}
		} else {
			ups[i] = graph.Add(u, v, float64(1+rng.Intn(16)))
		}
		sim.Apply(ups[i : i+1])
	}

	fc := &failoverClient{
		addrs: []string{nodes[0].binAddr, nodes[1].binAddr, nodes[2].binAddr},
		sid:   failoverSID,
		ups:   ups,
	}
	fc.limit.Store(0)
	clientDone := make(chan error, 1)
	go func() { clientDone <- fc.run() }()

	leaderIdx := 0
	prevEpoch := getFailoverHealthz(t, client, nodes[0].base).Epoch
	limits := []int64{700, 1400, failoverN}
	for cycle := 0; cycle < 3; cycle++ {
		resumeFrom := fc.acked.Load()
		fc.limit.Store(limits[cycle])
		// Let the stream get going again so the SIGKILL lands mid-ingest
		// with frames in flight.
		waitFailoverAcked(t, fc, resumeFrom+100, clientDone)
		if err := nodes[leaderIdx].cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		nodes[leaderIdx].cmd.Wait()
		// Followers drain their durable backlog within one applyReplicated
		// call; after this pause healthz batches == local durable prefix.
		time.Sleep(300 * time.Millisecond)

		survivors := []int{}
		for i := range nodes {
			if i != leaderIdx {
				survivors = append(survivors, i)
			}
		}
		var newLeaderIdx int
		if cycle < 2 {
			// Explicit promotion: pick the longest log (sync-followers=1
			// guarantees every acked record lives on at least one survivor,
			// and the prefix property puts it on the longest).
			newLeaderIdx = survivors[0]
			best := getFailoverHealthz(t, client, nodes[newLeaderIdx].base).Batches
			for _, i := range survivors[1:] {
				if b := getFailoverHealthz(t, client, nodes[i].base).Batches; b > best {
					newLeaderIdx, best = i, b
				}
			}
			resp, err := client.Post(nodes[newLeaderIdx].base+"/v1/admin/promote", "application/json", nil)
			if err != nil {
				t.Fatalf("cycle %d: promote: %v", cycle, err)
			}
			var pr struct {
				Promoted bool   `json:"promoted"`
				Epoch    uint64 `json:"epoch"`
				Role     string `json:"role"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				t.Fatalf("cycle %d: promote decode: %v", cycle, err)
			}
			resp.Body.Close()
			if !pr.Promoted || pr.Role != "leader" {
				t.Fatalf("cycle %d: promote answered promoted=%v role=%q", cycle, pr.Promoted, pr.Role)
			}
			if pr.Epoch <= prevEpoch {
				t.Fatalf("cycle %d: promotion epoch %d did not advance past %d", cycle, pr.Epoch, prevEpoch)
			}
		} else {
			// Watchdog cycle: nobody calls promote; the armed followers must
			// sort it out themselves — and the winner must hold the longest
			// log among the survivors at kill time.
			batches := map[int]uint64{}
			for _, i := range survivors {
				batches[i] = getFailoverHealthz(t, client, nodes[i].base).Batches
			}
			newLeaderIdx = -1
			deadline := time.Now().Add(20 * time.Second)
			for newLeaderIdx < 0 {
				if time.Now().After(deadline) {
					t.Fatalf("cycle %d: watchdog never promoted a follower\nsurvivor 1 log:\n%s\nsurvivor 2 log:\n%s",
						cycle, nodes[survivors[0]].log.String(), nodes[survivors[1]].log.String())
				}
				for _, i := range survivors {
					if getFailoverHealthz(t, client, nodes[i].base).Role == "leader" {
						newLeaderIdx = i
						break
					}
				}
				time.Sleep(100 * time.Millisecond)
			}
			for _, i := range survivors {
				if batches[i] > batches[newLeaderIdx] {
					t.Errorf("cycle %d: watchdog promoted node %d (batches %d) over longer node %d (batches %d)",
						cycle, newLeaderIdx, batches[newLeaderIdx], i, batches[i])
				}
			}
		}
		hz := getFailoverHealthz(t, client, nodes[newLeaderIdx].base)
		if hz.Epoch <= prevEpoch {
			t.Fatalf("cycle %d: new leader epoch %d not above deposed epoch %d", cycle, hz.Epoch, prevEpoch)
		}
		prevEpoch = hz.Epoch

		// The deposed leader rejoins with its old (stale-epoch) state and
		// leader-style flags: the boot probe must fence it into a follower
		// of the new leader, never a second writer.
		startNode(leaderIdx, "-resume")
		rejoined := getFailoverHealthz(t, client, nodes[leaderIdx].base)
		if rejoined.Role != "follower" {
			t.Fatalf("cycle %d: deposed leader rejoined as %q (epoch %d), split-brain\nlog:\n%s",
				cycle, rejoined.Role, rejoined.Epoch, nodes[leaderIdx].log.String())
		}
		leaderIdx = newLeaderIdx
		t.Logf("cycle %d: node %d leads at epoch %d; deposed node rejoined as follower", cycle, leaderIdx, prevEpoch)
	}

	// Drain: the client must finish the whole stream against the final
	// leader, with zero sanitizer drops (the exactly-once canary).
	waitFailoverAcked(t, fc, failoverN, clientDone)
	if err := <-clientDone; err != nil {
		t.Fatalf("failover client: %v", err)
	}
	if d := fc.droppedUpdates.Load(); d != 0 {
		t.Fatalf("%d updates dropped by the sanitizer — server state diverged from exactly-once application", d)
	}
	t.Logf("client done: %d updates acked across %d reconnects", failoverN, fc.reconnects.Load())

	leaderBase := nodes[leaderIdx].base
	leaderBatches = waitLeaderIdle(t, client, leaderBase)
	for _, n := range nodes {
		if n.base == leaderBase {
			continue
		}
		waitFollowerConverged(t, client, n.base, leaderBatches, 99, 0, n.log)
	}

	// Ground truth 1: offline replay of the final leader's durable chain,
	// verifying (sid, seq) contiguity — the discrete zero-loss / zero-dup
	// proof over everything the surviving log covers.
	through, _, payload, err := resilience.ReadCheckpointMeta(nodes[leaderIdx].ckpt)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	g2, qs, sessions, err := decodeState(payload)
	if err != nil {
		t.Fatalf("final checkpoint decode: %v", err)
	}
	var seq uint64
	for _, s := range sessions {
		if s.SID == failoverSID {
			seq = s.Seq
		}
	}
	recs, err := resilience.ReplaySegmented(nodes[leaderIdx].walDir)
	if err != nil {
		t.Fatalf("final WAL replay: %v", err)
	}
	idx := through
	for _, rec := range recs {
		if rec.Index < through {
			continue
		}
		if rec.Index != idx {
			t.Fatalf("WAL gap: record %d, expected %d", rec.Index, idx)
		}
		if rec.Index >= seedDurable { // session-tagged portion of the stream
			if rec.SID != failoverSID {
				t.Fatalf("record %d carries session %#x, want %#x", rec.Index, rec.SID, failoverSID)
			}
			if rec.Seq != seq+1 {
				t.Fatalf("record %d has seq %d after %d: %s", rec.Index, rec.Seq, seq,
					map[bool]string{true: "duplicate commit", false: "lost acked update"}[rec.Seq <= seq])
			}
			seq = rec.Seq
		}
		g2.Apply(rec.Batch)
		idx++
	}
	if seq != failoverN {
		t.Fatalf("durable chain covers seqs through %d, client was acked through %d", seq, failoverN)
	}
	if idx != leaderBatches {
		t.Fatalf("durable prefix %d != served batches %d", idx, leaderBatches)
	}

	// Ground truth 2: the durable-chain topology must equal the one-shot
	// simulation, and both engines' answers must match what every node
	// serves, byte for byte.
	ref := core.NewMultiCISO()
	ref.Reset(g2, a, qs)
	wantDurable := ref.Answers()
	ref2 := core.NewMultiCISO()
	ref2.Reset(sim, a, qs)
	wantSim := ref2.Answers()
	for i := range wantDurable {
		if wantDurable[i] != wantSim[i] {
			t.Fatalf("Q(%d->%d): durable replay gives %v, exactly-once simulation gives %v",
				qs[i].S, qs[i].D, wantDurable[i], wantSim[i])
		}
	}
	var served answersPayloadTest
	getJSONChaos(t, client, leaderBase+"/v1/answers", &served)
	if len(served.Answers) != len(qs) {
		t.Fatalf("leader serves %d answers, durable state has %d queries", len(served.Answers), len(qs))
	}
	for i, ans := range served.Answers {
		if float64(ans.Value) != wantDurable[i] {
			t.Errorf("Q(%d->%d): leader serves %v, offline replay gives %v",
				ans.S, ans.D, float64(ans.Value), wantDurable[i])
		}
	}
	leaderBody := answersBody(t, client, leaderBase)
	for i, n := range nodes {
		if n.base == leaderBase {
			continue
		}
		if body := answersBody(t, client, n.base); !bytes.Equal(body, leaderBody) {
			t.Fatalf("node %d answers body differs from leader\nleader: %s\nnode: %s", i, leaderBody, body)
		}
	}

	// Dedup corroboration: replay the last frame once more on a fresh
	// connection. It must be re-acked as accepted — the client's contract —
	// while minting no new stream positions and counting every update as a
	// dedup hit.
	hitsBefore := scrapeCounter(t, client, leaderBase, "srv_dedup_hits")
	lastFrame := ups[failoverN-failoverFrame:]
	acceptedAgain, err := resendSessionFrame(nodes[leaderIdx].binAddr, failoverSID, uint64(failoverN-failoverFrame)+1, lastFrame)
	if err != nil {
		t.Fatalf("duplicate-frame probe: %v", err)
	}
	if acceptedAgain != len(lastFrame) {
		t.Fatalf("duplicate frame re-acked %d of %d updates", acceptedAgain, len(lastFrame))
	}
	if b := getFailoverHealthz(t, client, leaderBase).Batches; b != leaderBatches {
		t.Fatalf("duplicate frame minted stream positions: batches %d -> %d", leaderBatches, b)
	}
	if hits := scrapeCounter(t, client, leaderBase, "srv_dedup_hits"); hits < hitsBefore+uint64(len(lastFrame)) {
		t.Fatalf("srv_dedup_hits %d -> %d, want +%d", hitsBefore, hits, len(lastFrame))
	}
	t.Logf("final: %d batches durable at epoch %d, seqs 1..%d exactly once, %d dedup hits over the run",
		leaderBatches, prevEpoch, failoverN, scrapeCounter(t, client, leaderBase, "srv_dedup_hits"))
}

// failoverClient is the exactly-once reconnect client: a windowed CGBIN/2
// sender that cycles through the cluster's binary addresses, resuming from
// the first un-acked update with unchanged sequence numbers after every
// connection death or non-OK ack.
type failoverClient struct {
	addrs          []string
	sid            uint64
	ups            []graph.Update
	limit          atomic.Int64 // barrier: do not send past this position
	acked          atomic.Int64 // first un-acked update index
	droppedUpdates atomic.Int64 // sanitizer drops reported in OK acks
	reconnects     atomic.Int64
}

func (c *failoverClient) run() error {
	at := 0
	rot := 0
	var lastErr error
	for at < len(c.ups) {
		if c.reconnects.Load() > 400 {
			return fmt.Errorf("giving up at update %d after %d reconnects: %v", at, c.reconnects.Load(), lastErr)
		}
		next, err := c.conn(c.addrs[rot%len(c.addrs)], at)
		at = next
		c.acked.Store(int64(at))
		if at >= len(c.ups) && err == nil {
			return nil
		}
		lastErr = err
		rot++
		c.reconnects.Add(1)
		time.Sleep(100 * time.Millisecond)
	}
	return nil
}

// conn drives one connection from c.ups[from:], returning the index just
// past the last acked frame — the resume point.
func (c *failoverClient) conn(addr string, from int) (int, error) {
	acked := from
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return acked, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(BinHello2)); err != nil {
		return acked, err
	}
	type pend struct{ end int }
	pending := make(chan pend, failoverWindow)
	ackDone := make(chan error, 1)
	var dead atomic.Bool
	go func() {
		br := bufio.NewReader(conn)
		for p := range pending {
			ack, rerr := ReadBinAck(br)
			if rerr == nil && ack.Status != BinStatusOK {
				rerr = fmt.Errorf("ack status %d at pos %d", ack.Status, ack.Pos)
			}
			if rerr != nil {
				dead.Store(true)
				conn.Close()
				for range pending {
				}
				ackDone <- rerr
				return
			}
			acked = p.end
			c.acked.Store(int64(p.end))
			c.droppedUpdates.Add(int64(ack.Dropped))
		}
		ackDone <- nil
	}()

	var buf []byte
	var sendErr error
	for at := from; at < len(c.ups) && !dead.Load(); {
		// Park at the phase barrier; the harness raises it per cycle.
		if int64(at) >= c.limit.Load() {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		end := at + failoverFrame
		if end > len(c.ups) {
			end = len(c.ups)
		}
		pending <- pend{end: end}
		buf = AppendBinFrameSession(buf[:0], c.sid, uint64(at)+1, c.ups[at:end])
		if _, werr := conn.Write(buf); werr != nil {
			sendErr = werr
			break
		}
		at = end
		time.Sleep(5 * time.Millisecond) // pacing: keep ingest alive across cycles
	}
	close(pending)
	err = <-ackDone
	if err == nil {
		err = sendErr
	}
	return acked, err
}

// resendSessionFrame opens a fresh CGBIN/2 connection, sends exactly one
// frame, and returns its ack's accepted count.
func resendSessionFrame(addr string, sid, firstSeq uint64, ups []graph.Update) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(BinHello2)); err != nil {
		return 0, err
	}
	buf := AppendBinFrameSession(nil, sid, firstSeq, ups)
	if _, err := conn.Write(buf); err != nil {
		return 0, err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := ReadBinAck(bufio.NewReader(conn))
	if err != nil {
		return 0, err
	}
	if ack.Status != BinStatusOK {
		return 0, fmt.Errorf("ack status %d", ack.Status)
	}
	return int(ack.Accepted), nil
}

func waitFailoverAcked(t *testing.T, c *failoverClient, target int64, done chan error) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for c.acked.Load() < target {
		select {
		case err := <-done:
			t.Fatalf("client exited early at %d/%d: %v", c.acked.Load(), target, err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("client stalled at %d, waiting for %d (%d reconnects)", c.acked.Load(), target, c.reconnects.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type failoverHealthz struct {
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	Batches uint64 `json:"batches"`
	Leader  string `json:"leader"`
}

func getFailoverHealthz(t *testing.T, client *http.Client, base string) failoverHealthz {
	t.Helper()
	var hz failoverHealthz
	getJSONChaos(t, client, base+"/healthz", &hz)
	return hz
}

// scrapeCounter pulls one named counter out of /metrics.
func scrapeCounter(t *testing.T, client *http.Client, base, name string) uint64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	re := regexp.MustCompile(`name="` + name + `"\} (\d+)`)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			v, _ := strconv.ParseUint(m[1], 10, 64)
			return v
		}
	}
	return 0
}
