package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cisgraph/internal/core"
	"cisgraph/internal/graph"
)

func TestDedupTableExactlyOnce(t *testing.T) {
	d := newDedupTable(3)
	if d.dup(7, 1) {
		t.Fatal("fresh table reported a duplicate")
	}
	d.advance(7, 1)
	d.advance(7, 2)
	if !d.dup(7, 1) || !d.dup(7, 2) {
		t.Fatal("accepted seqs not recognized as duplicates")
	}
	if d.dup(7, 3) {
		t.Fatal("unseen seq reported duplicate")
	}
	if d.dup(0, 1) {
		t.Fatal("session 0 must never deduplicate")
	}
	d.advance(0, 99)
	if d.size() != 1 {
		t.Fatalf("session 0 entered the table (size %d)", d.size())
	}

	// Eviction is least-recently-ADVANCED: touch order 7,8,9 then re-advance
	// 7 — adding 10 must evict 8.
	d.advance(8, 1)
	d.advance(9, 1)
	d.advance(7, 3)
	d.advance(10, 1)
	if d.size() != 3 {
		t.Fatalf("size %d after eviction, want 3", d.size())
	}
	if d.dup(8, 1) {
		t.Fatal("evicted session 8 still deduplicates")
	}
	if !d.dup(7, 3) || !d.dup(9, 1) || !d.dup(10, 1) {
		t.Fatal("survivors lost state across eviction")
	}

	// snapshot → load round-trips both the seqs and the eviction order.
	snap := d.snapshot()
	d2 := newDedupTable(3)
	d2.load(snap)
	if got := d2.snapshot(); fmt.Sprint(got) != fmt.Sprint(snap) {
		t.Fatalf("load(snapshot()) mutated the table: %v -> %v", snap, got)
	}
	d2.advance(11, 1) // evicts the same victim the original would pick
	d.advance(11, 1)
	if fmt.Sprint(d.snapshot()) != fmt.Sprint(d2.snapshot()) {
		t.Fatalf("post-restore eviction diverged:\n live %v\n restored %v", d.snapshot(), d2.snapshot())
	}
}

func TestCheckpointStateSessionRoundTrip(t *testing.T) {
	g := graph.NewDynamic(4)
	g.Apply([]graph.Update{graph.Add(0, 1, 2), graph.Add(1, 3, 5)})
	qs := []core.Query{{S: 0, D: 3}}
	sessions := []dedupSession{{SID: 0xbeef, Seq: 17}, {SID: 1, Seq: 999}}

	payload := encodeState(g, qs, sessions)
	g2, qs2, sess2, err := decodeState(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs2) != 1 || qs2[0] != qs[0] {
		t.Fatalf("queries mutated: %v", qs2)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("topology mutated: %d edges, want %d", g2.NumEdges(), g.NumEdges())
	}
	if fmt.Sprint(sess2) != fmt.Sprint(sessions) {
		t.Fatalf("sessions mutated: %v, want %v", sess2, sessions)
	}

	// No sessions → the v1 payload, byte-identical: old binaries can read
	// checkpoints written by a node that never saw a CGBIN/2 client.
	v2empty := encodeState(g, qs, nil)
	if !bytes.HasPrefix(v2empty, []byte("CGSRVS1\n")) {
		t.Fatalf("empty session table did not fall back to v1 (prefix %q)", v2empty[:8])
	}
	if _, _, sessNone, err := decodeState(v2empty); err != nil || len(sessNone) != 0 {
		t.Fatalf("v1 payload decode: sessions=%v err=%v", sessNone, err)
	}
}

func TestFollowerMarksKth(t *testing.T) {
	m := newFollowerMarks()
	if got := m.kth(1); got != 0 {
		t.Fatalf("kth(1) with no followers = %d, want 0", got)
	}
	if got := m.kth(0); got != ^uint64(0) {
		t.Fatalf("kth(0) = %d, want max (vacuous sync requirement)", got)
	}
	m.observe("a", 10)
	m.observe("b", 7)
	if got := m.kth(1); got != 10 {
		t.Fatalf("kth(1) = %d, want 10", got)
	}
	if got := m.kth(2); got != 7 {
		t.Fatalf("kth(2) = %d, want 7", got)
	}
	if got := m.kth(3); got != 0 {
		t.Fatalf("kth(3) with 2 followers = %d, want 0", got)
	}
	// Marks only advance: a re-bootstrapping follower asking from 0 again
	// must not un-prove what it already fsynced.
	m.observe("a", 3)
	if got := m.kth(1); got != 10 {
		t.Fatalf("kth(1) after regressing observe = %d, want 10", got)
	}
}

// TestLeaderDemotesOnHigherEpoch drives the fencing invariant in-process: a
// leader that learns of a higher epoch (as the replication Source does when
// a promoted sibling proves one) must demote before committing anything
// else, and its write surface must answer 421 from then on.
func TestLeaderDemotesOnHigherEpoch(t *testing.T) {
	g := graph.NewDynamic(8)
	g.Apply([]graph.Update{graph.Add(0, 1, 1)})
	srv, err := New(g, testAlgo(t), testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if srv.Role() != "leader" || srv.Epoch() != 0 {
		t.Fatalf("fresh node: role=%q epoch=%d", srv.Role(), srv.Epoch())
	}
	srv.onPeerEpoch(5)
	if srv.Role() != "follower" {
		t.Fatalf("role %q after peer proved epoch 5, want follower", srv.Role())
	}
	resp, err := http.Post(ts.URL+"/v1/updates", "application/json",
		strings.NewReader(`{"updates":[{"op":"add","from":2,"to":3,"w":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("demoted node accepted a write: status %d, want 421", resp.StatusCode)
	}

	// Idempotent: a second, lower peer epoch must not resurrect leadership.
	srv.onPeerEpoch(3)
	if srv.Role() != "follower" {
		t.Fatalf("role %q after stale peer epoch, want follower", srv.Role())
	}
}
