package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cisgraph/internal/graph"
	"cisgraph/internal/resilience"
)

// fpEntry is one admitted frame: its updates, the CGBIN/2 session tag of the
// first update (sid 0 = untagged CGBIN/1 frame), and the channel its ack is
// resolved on (buffered 1 — exactly one ack is ever sent).
type fpEntry struct {
	ups      []graph.Update
	sid, seq uint64
	ack      chan BinAck
}

// pendingAck is one group commit whose acks are gated on sync-follower
// durability (Config.SyncFollowers): the acks release when the k-th highest
// follower tail mark passes `need`, or degrade at `expires`.
type pendingAck struct {
	need    uint64
	expires time.Time
	entries []*fpEntry
	acks    []BinAck
}

// fastPath is the per-update admission pipeline (DESIGN.md §14): binary
// connections submit frames here, a single commit goroutine gathers whatever
// is queued into one group and commits it — sanitize → group WAL append
// (one record per update, one fsync) → apply (safe/unsafe routed inside the
// shard engines) → publish → ack. The sanitize→WAL→apply order and the
// never-apply-un-durable rule are identical to the batch path; the batch
// window is what's bypassed.
type fastPath struct {
	s    *Server
	ch   chan *fpEntry
	quit chan struct{}
	done chan struct{}

	// Sync-ack resolver (nil channels when SyncFollowers == 0).
	syncCh   chan *pendingAck
	syncQuit chan struct{}
	syncDone chan struct{}

	// pending counts admitted-but-unacked entries; Quiesced needs the fast
	// path's in-flight work, not just the batcher's.
	pending  atomic.Int64
	draining atomic.Bool
	stopOnce sync.Once

	mu    sync.Mutex
	lns   map[net.Listener]struct{}
	conns map[net.Conn]struct{}

	// Commit-goroutine-private scratch, reused across groups.
	group  []*fpEntry
	clean  []graph.Update
	counts []uint32
	dups   []uint32
	wrecs  []resilience.Record
}

func newFastPath(s *Server) *fastPath {
	f := &fastPath{
		s:     s,
		ch:    make(chan *fpEntry, s.cfg.FastPendingFrames),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	if s.cfg.SyncFollowers > 0 {
		f.syncCh = make(chan *pendingAck, 64)
		f.syncQuit = make(chan struct{})
		f.syncDone = make(chan struct{})
		go f.runSyncResolver()
	}
	go f.run()
	return f
}

// submit admits one entry; false means the server is draining and the entry
// was not queued (the caller acks BinStatusDraining itself). A full queue
// blocks — on a persistent connection that is the natural backpressure.
func (f *fastPath) submit(e *fpEntry) bool {
	if f.draining.Load() {
		return false
	}
	f.pending.Add(1)
	select {
	case f.ch <- e:
		return true
	case <-f.quit:
		f.pending.Add(-1)
		return false
	}
}

func (f *fastPath) quiesced() bool { return f.pending.Load() == 0 }

// run is the commit loop: block for one entry, then gather everything
// already queued (up to FastGroupMax updates) into the same group commit —
// group size adapts to load, so a lone update commits immediately while a
// burst amortizes its fsync across the whole group.
func (f *fastPath) run() {
	defer close(f.done)
	for {
		var e *fpEntry
		select {
		case e = <-f.ch:
		case <-f.quit:
			// Drain the remainder; submissions are already refused.
			for {
				select {
				case e := <-f.ch:
					f.commitGroup(f.gather(e))
				default:
					return
				}
			}
		}
		f.commitGroup(f.gather(e))
	}
}

// gather collects e plus whatever else is queued, bounded by FastGroupMax
// updates, into the reused group slice.
func (f *fastPath) gather(e *fpEntry) []*fpEntry {
	f.group = append(f.group[:0], e)
	n := len(e.ups)
	for n < f.s.cfg.FastGroupMax {
		select {
		case e2 := <-f.ch:
			f.group = append(f.group, e2)
			n += len(e2.ups)
		default:
			return f.group
		}
	}
	return f.group
}

// commitGroup runs one group through the durability pipeline under the
// commit lock (serializing against the batch path's applyBatch) and
// resolves every entry's ack. Each accepted update is its own WAL record
// and stream position — replica tailing and crash replay see exactly the
// records a sequence of single-update batches would have produced.
//
// Exactly-once (DESIGN.md §17): a session-tagged update whose (sid, seq)
// the dedup table already holds is a client replay of something durable —
// it is skipped (no new record, no position) but counted in the ack's
// Accepted, because from the client's perspective it IS accepted. The table
// advances only after the WAL append succeeds, in commit order, so the live
// table always matches what a crash replay rebuilds.
func (f *fastPath) commitGroup(entries []*fpEntry) {
	s := f.s
	defer f.pending.Add(-int64(len(entries)))
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	ackAll := func(status uint32) {
		pos := s.applied.Load()
		for _, e := range entries {
			e.ack <- BinAck{Pos: pos, Dropped: uint32(len(e.ups)), Status: status}
		}
	}
	// A node deposed after these frames were admitted must not commit them:
	// the client re-sends to the new leader (dedup makes that safe).
	if s.isFollower() {
		ackAll(BinStatusNotLeader)
		return
	}
	// Degraded mode: an un-durable update is never applied (DESIGN.md
	// §12.2); the whole group is refused while the breaker is open.
	if s.brk.Open() {
		for _, e := range entries {
			s.h.dropUpdates.Add(int64(len(e.ups)))
		}
		ackAll(BinStatusDegraded)
		return
	}

	// Sanitize per update against the shadow + the group's own net effect,
	// tracking per-entry accept/duplicate counts for the acks. Session tags
	// ride along into the WAL records.
	sh := s.shadow.Load()
	ss := s.san.Stream(sh)
	clean, counts, dups := f.clean[:0], f.counts[:0], f.dups[:0]
	recs := f.wrecs[:0]
	for _, e := range entries {
		acc, dup := uint32(0), uint32(0)
		for i, up := range e.ups {
			var sid, seq uint64
			if e.sid != 0 {
				sid, seq = e.sid, e.seq+uint64(i)
				if s.dedup.dup(sid, seq) {
					dup++
					s.h.dedupHits.Inc()
					continue
				}
			}
			if ss.Check(up) == "" {
				clean = append(clean, up)
				recs = append(recs, resilience.Record{SID: sid, Seq: seq})
				acc++
			} else {
				s.h.fastDropped.Inc()
			}
		}
		counts = append(counts, acc)
		dups = append(dups, dup)
	}
	f.clean, f.counts, f.dups = clean, counts, dups
	// Batch slices must point into clean's FINAL backing array — the appends
	// above may have reallocated it — so they are filled in a second pass.
	for i := range recs {
		recs[i].Batch = clean[i : i+1]
	}
	f.wrecs = recs

	if len(clean) > 0 {
		if s.wal != nil {
			if _, err := s.wal.AppendRecords(recs); err != nil {
				s.brk.Trip(err)
				s.setLastErr(fmt.Errorf("server: fastpath wal append failed (group dropped, degraded): %w", err))
				s.h.dropUpdates.Add(int64(len(clean)))
				ackAll(BinStatusDegraded)
				return
			}
		}
		// Durable: the dedup table may now advance (commit order).
		for _, rec := range recs {
			s.dedup.advance(rec.SID, rec.Seq)
		}
		sh.Apply(clean)
		_, changed, perr := s.pool.ApplyUpdates(clean)
		if perr != nil {
			s.h.degraded.Inc()
			s.setLastErr(perr)
		}
		before := s.applied.Load()
		applied := s.applied.Add(uint64(len(clean)))
		s.publishWatch(applied, changed)
		s.edges.Store(int64(sh.NumEdges()))
		s.h.accepted.Add(int64(len(clean)))
		s.h.batches.Add(int64(len(clean))) // each update is one stream position
		s.h.updates.Add(int64(len(clean)))
		s.h.fastGroups.Inc()
		s.h.fastUpdates.Add(int64(len(clean)))
		if n := uint64(s.cfg.CheckpointEvery); n > 0 && applied/n > before/n {
			if cerr := s.writeCheckpoint(); cerr != nil {
				s.setLastErr(cerr)
			}
		}
	}

	// Acks stream back with each entry's cumulative commit position; the
	// snapshot is published, so receiving the ack means the entry's updates
	// are visible to /v1/answers readers. Duplicates count as accepted (they
	// are durable) without advancing the position.
	pos := s.applied.Load() - uint64(len(clean))
	if s.cfg.SyncFollowers > 0 && s.wal != nil {
		// Replication-gated acks: hold them until SyncFollowers followers
		// prove (via their tail positions) that every record in this commit —
		// including the originals behind any duplicates — is durable off-box.
		p := &pendingAck{
			need:    s.wal.NextIndex(),
			expires: time.Now().Add(s.cfg.SyncAckTimeout),
			entries: append([]*fpEntry(nil), entries...),
			acks:    make([]BinAck, len(entries)),
		}
		for i, e := range entries {
			pos += uint64(counts[i])
			p.acks[i] = BinAck{
				Pos:      pos,
				Accepted: counts[i] + dups[i],
				Dropped:  uint32(len(e.ups)) - counts[i] - dups[i],
				Status:   BinStatusOK,
			}
		}
		f.syncCh <- p
		return
	}
	for i, e := range entries {
		pos += uint64(counts[i])
		e.ack <- BinAck{
			Pos:      pos,
			Accepted: counts[i] + dups[i],
			Dropped:  uint32(len(e.ups)) - counts[i] - dups[i],
			Status:   BinStatusOK,
		}
	}
}

// runSyncResolver releases replication-gated acks. Pending groups form a
// FIFO — commit order makes both `need` and `expires` monotone — so only the
// head ever needs examining. A group whose deadline passes without enough
// follower coverage degrades: the client treats the updates as not applied
// and replays them (locally they ARE durable; the dedup table absorbs the
// replay), which converts "leader committed but replication stalled" into
// at-least-once delivery with exactly-once application.
func (f *fastPath) runSyncResolver() {
	s := f.s
	defer close(f.syncDone)
	var queue []*pendingAck
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	release := func(p *pendingAck) {
		for i, e := range p.entries {
			e.ack <- p.acks[i]
		}
	}
	degrade := func(p *pendingAck, timedOut bool) {
		if timedOut {
			s.h.syncAckTimeouts.Inc()
		}
		for _, e := range p.entries {
			e.ack <- BinAck{
				Pos:     p.acks[len(p.acks)-1].Pos,
				Dropped: uint32(len(e.ups)),
				Status:  BinStatusDegraded,
			}
		}
	}
	for {
		k := s.cfg.SyncFollowers
		for len(queue) > 0 && s.marks.kth(k) >= queue[0].need {
			release(queue[0])
			queue[0] = nil
			queue = queue[1:]
		}
		now := time.Now()
		for len(queue) > 0 && now.After(queue[0].expires) {
			degrade(queue[0], true)
			queue[0] = nil
			queue = queue[1:]
		}
		if len(queue) > 0 {
			timer.Reset(time.Until(queue[0].expires))
		} else {
			timer.Reset(time.Hour)
		}
		select {
		case p := <-f.syncCh:
			queue = append(queue, p)
		case <-s.marks.notify:
		case <-timer.C:
		case <-f.syncQuit:
			// Shutdown: the commit loop has exited, so syncCh receives no
			// more sends; degrade everything still gated (clients replay to
			// the successor; dedup absorbs).
			for {
				select {
				case p := <-f.syncCh:
					queue = append(queue, p)
					continue
				default:
				}
				break
			}
			for _, p := range queue {
				degrade(p, false)
			}
			return
		}
	}
}

// shutdown flushes and stops the fast path: refuse new submissions, stop
// accepting connections, commit everything admitted, release or degrade
// gated acks, then close the remaining connections (whose writer goroutines
// are by then unblocked). Idempotent; called from Server.Drain before the
// batcher drains so the final checkpoint covers fast-path commits.
func (f *fastPath) shutdown() {
	f.stopOnce.Do(func() {
		f.draining.Store(true)
		f.mu.Lock()
		for ln := range f.lns {
			ln.Close()
		}
		f.mu.Unlock()
		close(f.quit)
		<-f.done
		if f.syncQuit != nil {
			close(f.syncQuit)
			<-f.syncDone
		}
		f.mu.Lock()
		for c := range f.conns {
			c.Close()
		}
		f.mu.Unlock()
	})
}

// ServeBinary accepts binary-protocol ingest connections on ln until the
// listener closes (or Drain begins) and blocks for the duration — run it on
// its own goroutine. Followers accept connections too, answering each hello
// with a single NotLeader ack — a failover-aware client cycles through its
// address list instead of hanging, so the daemon always runs the listener.
func (s *Server) ServeBinary(ln net.Listener) error {
	f := s.fp
	f.mu.Lock()
	if f.draining.Load() {
		f.mu.Unlock()
		ln.Close()
		return nil
	}
	f.lns[ln] = struct{}{}
	f.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if f.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go f.handleConn(c)
	}
}

// handleConn runs one binary connection: a reader goroutine decodes frames
// and submits them, a writer goroutine streams acks back in frame order.
// The bounded ack queue is the per-connection pipeline window.
func (f *fastPath) handleConn(c net.Conn) {
	s := f.s
	f.mu.Lock()
	f.conns[c] = struct{}{}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.conns, c)
		f.mu.Unlock()
		c.Close()
	}()
	s.h.binConns.Inc()

	br := bufio.NewReaderSize(c, 64<<10)
	var hello [len(BinHello)]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		s.h.binBadFrames.Inc()
		return
	}
	var v2 bool
	switch string(hello[:]) {
	case BinHello:
	case BinHello2:
		v2 = true
	default:
		s.h.binBadFrames.Inc()
		return
	}
	if s.isFollower() {
		buf := AppendBinAck(nil, BinAck{Pos: s.applied.Load(), Status: BinStatusNotLeader})
		c.Write(buf)
		return
	}

	ackQ := make(chan *fpEntry, s.cfg.FastPipelineDepth)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bw := bufio.NewWriterSize(c, 16<<10)
		buf := make([]byte, 0, BinAckSize)
		for e := range ackQ {
			a := <-e.ack
			buf = AppendBinAck(buf[:0], a)
			if _, err := bw.Write(buf); err != nil {
				for e := range ackQ {
					<-e.ack // keep commit-side sends from blocking
				}
				return
			}
			if len(ackQ) == 0 {
				// No ack ready behind this one: flush so a stop-and-wait
				// client sees its ack now, not at the next buffer fill.
				if err := bw.Flush(); err != nil {
					for e := range ackQ {
						<-e.ack
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	var ups []graph.Update
	var payload []byte
	var sid, seq uint64
	for {
		var err error
		if v2 {
			ups, payload, sid, seq, err = ReadBinFrameSession(br, ups[:0], payload)
		} else {
			ups, payload, err = ReadBinFrame(br, ups[:0], payload)
			sid, seq = 0, 0
		}
		if err != nil {
			if err != io.EOF {
				// Malformed frame or torn read: the stream is desynced. Ack
				// the failure so the client can tell, then close.
				s.h.binBadFrames.Inc()
				e := &fpEntry{ack: make(chan BinAck, 1)}
				e.ack <- BinAck{Pos: s.applied.Load(), Status: BinStatusBadFrame}
				select {
				case ackQ <- e:
				default:
				}
			}
			break
		}
		s.h.binFrames.Inc()
		e := &fpEntry{ups: append([]graph.Update(nil), ups...), sid: sid, seq: seq, ack: make(chan BinAck, 1)}
		if !f.submit(e) {
			e.ack <- BinAck{Pos: s.applied.Load(), Dropped: uint32(len(e.ups)), Status: BinStatusDraining}
			select {
			case ackQ <- e:
			default:
			}
			break
		}
		ackQ <- e
	}
	close(ackQ)
	wg.Wait()
}
