package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"cisgraph/internal/graph"
)

// fpEntry is one admitted frame: its updates plus the channel its ack is
// resolved on (buffered 1 — exactly one ack is ever sent).
type fpEntry struct {
	ups []graph.Update
	ack chan BinAck
}

// fastPath is the per-update admission pipeline (DESIGN.md §14): binary
// connections submit frames here, a single commit goroutine gathers whatever
// is queued into one group and commits it — sanitize → group WAL append
// (one record per update, one fsync) → apply (safe/unsafe routed inside the
// shard engines) → publish → ack. The sanitize→WAL→apply order and the
// never-apply-un-durable rule are identical to the batch path; the batch
// window is what's bypassed.
type fastPath struct {
	s    *Server
	ch   chan *fpEntry
	quit chan struct{}
	done chan struct{}

	// pending counts admitted-but-unacked entries; Quiesced needs the fast
	// path's in-flight work, not just the batcher's.
	pending  atomic.Int64
	draining atomic.Bool
	stopOnce sync.Once

	mu    sync.Mutex
	lns   map[net.Listener]struct{}
	conns map[net.Conn]struct{}

	// Commit-goroutine-private scratch, reused across groups.
	group  []*fpEntry
	clean  []graph.Update
	counts []uint32
	recs   [][]graph.Update
}

func newFastPath(s *Server) *fastPath {
	f := &fastPath{
		s:     s,
		ch:    make(chan *fpEntry, s.cfg.FastPendingFrames),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	go f.run()
	return f
}

// submit admits one entry; false means the server is draining and the entry
// was not queued (the caller acks BinStatusDraining itself). A full queue
// blocks — on a persistent connection that is the natural backpressure.
func (f *fastPath) submit(e *fpEntry) bool {
	if f.draining.Load() {
		return false
	}
	f.pending.Add(1)
	select {
	case f.ch <- e:
		return true
	case <-f.quit:
		f.pending.Add(-1)
		return false
	}
}

func (f *fastPath) quiesced() bool { return f.pending.Load() == 0 }

// run is the commit loop: block for one entry, then gather everything
// already queued (up to FastGroupMax updates) into the same group commit —
// group size adapts to load, so a lone update commits immediately while a
// burst amortizes its fsync across the whole group.
func (f *fastPath) run() {
	defer close(f.done)
	for {
		var e *fpEntry
		select {
		case e = <-f.ch:
		case <-f.quit:
			// Drain the remainder; submissions are already refused.
			for {
				select {
				case e := <-f.ch:
					f.commitGroup(f.gather(e))
				default:
					return
				}
			}
		}
		f.commitGroup(f.gather(e))
	}
}

// gather collects e plus whatever else is queued, bounded by FastGroupMax
// updates, into the reused group slice.
func (f *fastPath) gather(e *fpEntry) []*fpEntry {
	f.group = append(f.group[:0], e)
	n := len(e.ups)
	for n < f.s.cfg.FastGroupMax {
		select {
		case e2 := <-f.ch:
			f.group = append(f.group, e2)
			n += len(e2.ups)
		default:
			return f.group
		}
	}
	return f.group
}

// commitGroup runs one group through the durability pipeline under the
// commit lock (serializing against the batch path's applyBatch) and
// resolves every entry's ack. Each accepted update is its own WAL record
// and stream position — replica tailing and crash replay see exactly the
// records a sequence of single-update batches would have produced.
func (f *fastPath) commitGroup(entries []*fpEntry) {
	s := f.s
	defer f.pending.Add(-int64(len(entries)))
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	ackAll := func(status uint32) {
		pos := s.applied.Load()
		for _, e := range entries {
			e.ack <- BinAck{Pos: pos, Dropped: uint32(len(e.ups)), Status: status}
		}
	}
	// Degraded mode: an un-durable update is never applied (DESIGN.md
	// §12.2); the whole group is refused while the breaker is open.
	if s.brk.Open() {
		for _, e := range entries {
			s.h.dropUpdates.Add(int64(len(e.ups)))
		}
		ackAll(BinStatusDegraded)
		return
	}

	// Sanitize per update against the shadow + the group's own net effect,
	// tracking per-entry accept counts for the acks.
	sh := s.shadow.Load()
	ss := s.san.Stream(sh)
	clean, counts := f.clean[:0], f.counts[:0]
	for _, e := range entries {
		acc := uint32(0)
		for _, up := range e.ups {
			if ss.Check(up) == "" {
				clean = append(clean, up)
				acc++
			} else {
				s.h.fastDropped.Inc()
			}
		}
		counts = append(counts, acc)
	}
	f.clean, f.counts = clean, counts

	if len(clean) > 0 {
		if s.wal != nil {
			recs := f.recs[:0]
			for i := range clean {
				recs = append(recs, clean[i:i+1])
			}
			f.recs = recs
			if _, err := s.wal.AppendGroup(recs); err != nil {
				s.brk.Trip(err)
				s.setLastErr(fmt.Errorf("server: fastpath wal append failed (group dropped, degraded): %w", err))
				s.h.dropUpdates.Add(int64(len(clean)))
				ackAll(BinStatusDegraded)
				return
			}
		}
		sh.Apply(clean)
		_, changed, perr := s.pool.ApplyUpdates(clean)
		if perr != nil {
			s.h.degraded.Inc()
			s.setLastErr(perr)
		}
		before := s.applied.Load()
		applied := s.applied.Add(uint64(len(clean)))
		s.publishWatch(applied, changed)
		s.edges.Store(int64(sh.NumEdges()))
		s.h.accepted.Add(int64(len(clean)))
		s.h.batches.Add(int64(len(clean))) // each update is one stream position
		s.h.updates.Add(int64(len(clean)))
		s.h.fastGroups.Inc()
		s.h.fastUpdates.Add(int64(len(clean)))
		if n := uint64(s.cfg.CheckpointEvery); n > 0 && applied/n > before/n {
			if cerr := s.writeCheckpoint(); cerr != nil {
				s.setLastErr(cerr)
			}
		}
	}

	// Acks stream back with each entry's cumulative commit position; the
	// snapshot is published, so receiving the ack means the entry's updates
	// are visible to /v1/answers readers.
	pos := s.applied.Load() - uint64(len(clean))
	for i, e := range entries {
		pos += uint64(counts[i])
		e.ack <- BinAck{
			Pos:      pos,
			Accepted: counts[i],
			Dropped:  uint32(len(e.ups)) - counts[i],
			Status:   BinStatusOK,
		}
	}
}

// shutdown flushes and stops the fast path: refuse new submissions, stop
// accepting connections, commit everything admitted, then close the
// remaining connections. Idempotent; called from Server.Drain before the
// batcher drains so the final checkpoint covers fast-path commits.
func (f *fastPath) shutdown() {
	f.stopOnce.Do(func() {
		f.draining.Store(true)
		f.mu.Lock()
		for ln := range f.lns {
			ln.Close()
		}
		f.mu.Unlock()
		close(f.quit)
		<-f.done
		f.mu.Lock()
		for c := range f.conns {
			c.Close()
		}
		f.mu.Unlock()
	})
}

// ServeBinary accepts binary-protocol ingest connections on ln until the
// listener closes (or Drain begins) and blocks for the duration — run it on
// its own goroutine. Followers refuse the listener outright: the write path
// lives on the leader.
func (s *Server) ServeBinary(ln net.Listener) error {
	if s.isFollower() {
		ln.Close()
		return errors.New("server: binary ingest is leader-only (follower refuses writes)")
	}
	f := s.fp
	f.mu.Lock()
	if f.draining.Load() {
		f.mu.Unlock()
		ln.Close()
		return nil
	}
	f.lns[ln] = struct{}{}
	f.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if f.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go f.handleConn(c)
	}
}

// handleConn runs one binary connection: a reader goroutine decodes frames
// and submits them, a writer goroutine streams acks back in frame order.
// The bounded ack queue is the per-connection pipeline window.
func (f *fastPath) handleConn(c net.Conn) {
	s := f.s
	f.mu.Lock()
	f.conns[c] = struct{}{}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.conns, c)
		f.mu.Unlock()
		c.Close()
	}()
	s.h.binConns.Inc()

	br := bufio.NewReaderSize(c, 64<<10)
	var hello [len(BinHello)]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil || string(hello[:]) != BinHello {
		s.h.binBadFrames.Inc()
		return
	}

	ackQ := make(chan *fpEntry, s.cfg.FastPipelineDepth)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bw := bufio.NewWriterSize(c, 16<<10)
		buf := make([]byte, 0, BinAckSize)
		for e := range ackQ {
			a := <-e.ack
			buf = AppendBinAck(buf[:0], a)
			if _, err := bw.Write(buf); err != nil {
				for e := range ackQ {
					<-e.ack // keep commit-side sends from blocking
				}
				return
			}
			if len(ackQ) == 0 {
				// No ack ready behind this one: flush so a stop-and-wait
				// client sees its ack now, not at the next buffer fill.
				if err := bw.Flush(); err != nil {
					for e := range ackQ {
						<-e.ack
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	var ups []graph.Update
	var payload []byte
	for {
		var err error
		ups, payload, err = ReadBinFrame(br, ups[:0], payload)
		if err != nil {
			if err != io.EOF {
				// Malformed frame or torn read: the stream is desynced. Ack
				// the failure so the client can tell, then close.
				s.h.binBadFrames.Inc()
				e := &fpEntry{ack: make(chan BinAck, 1)}
				e.ack <- BinAck{Pos: s.applied.Load(), Status: BinStatusBadFrame}
				select {
				case ackQ <- e:
				default:
				}
			}
			break
		}
		s.h.binFrames.Inc()
		e := &fpEntry{ups: append([]graph.Update(nil), ups...), ack: make(chan BinAck, 1)}
		if !f.submit(e) {
			e.ack <- BinAck{Pos: s.applied.Load(), Dropped: uint32(len(e.ups)), Status: BinStatusDraining}
			select {
			case ackQ <- e:
			default:
			}
			break
		}
		ackQ <- e
	}
	close(ackQ)
	wg.Wait()
}
