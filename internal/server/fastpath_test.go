package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/resilience"
)

// binTestClient is a minimal binary-protocol client for tests: one frame in
// flight at a time unless the test pipelines explicitly.
type binTestClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	buf  []byte
}

func dialBinary(t *testing.T, srv *Server) (*binTestClient, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(ln)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte(BinHello)); err != nil {
		t.Fatal(err)
	}
	cl := &binTestClient{t: t, conn: c, br: bufio.NewReader(c)}
	return cl, func() { c.Close(); ln.Close() }
}

func (c *binTestClient) send(ups []graph.Update) {
	c.t.Helper()
	c.buf = AppendBinFrame(c.buf[:0], ups)
	if _, err := c.conn.Write(c.buf); err != nil {
		c.t.Fatal(err)
	}
}

func (c *binTestClient) recv() BinAck {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	a, err := ReadBinAck(c.br)
	if err != nil {
		c.t.Fatalf("read ack: %v", err)
	}
	return a
}

// roundTrip sends one frame and returns its ack.
func (c *binTestClient) roundTrip(ups []graph.Update) BinAck {
	c.t.Helper()
	c.send(ups)
	return c.recv()
}

// TestBinaryIngestEndToEnd drives the whole fast path over a real TCP
// connection: framed updates in, ordered positional acks out, answers
// identical to an offline engine fed the same accepted updates.
func TestBinaryIngestEndToEnd(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	dir := t.TempDir()
	cfg := testServerConfig()
	cfg.WALPath = filepath.Join(dir, "srv.wal")
	cfg.CheckpointPath = filepath.Join(dir, "srv.ckpt")

	srv, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var qs []core.Query
	for _, p := range w.QueryPairsConnected(5) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	ref := core.NewMultiCISO()
	ref.Reset(w.Initial(), a, qs)
	for _, q := range qs {
		if resp, body := postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register query: status %d: %s", resp.StatusCode, body)
		}
	}

	bc, closeBin := dialBinary(t, srv)
	defer closeBin()

	var pos uint64
	for i := 0; i < 6; i++ {
		frame := w.NextBatch()
		ack := bc.roundTrip(frame)
		if ack.Status != BinStatusOK {
			t.Fatalf("frame %d: status %d", i, ack.Status)
		}
		if int(ack.Accepted+ack.Dropped) != len(frame) {
			t.Fatalf("frame %d: accepted %d + dropped %d != %d", i, ack.Accepted, ack.Dropped, len(frame))
		}
		pos += uint64(ack.Accepted)
		if ack.Pos != pos {
			t.Fatalf("frame %d: pos %d, want %d", i, ack.Pos, pos)
		}
		// The ack means the frame is visible: mirror it into the reference
		// (workload batches are clean, so accepted == all).
		for _, up := range frame {
			ref.ApplyBatch([]graph.Update{up})
		}
	}
	if !srv.Quiesced() {
		t.Fatal("acked stream not quiesced")
	}

	var resp answersResponse
	getJSON(t, client, ts.URL+"/v1/answers", &resp)
	if resp.Batches != pos {
		t.Fatalf("answers at position %d, want %d", resp.Batches, pos)
	}
	want := ref.Answers()
	for i, ans := range resp.Answers {
		if float64(ans.Value) != float64(want[i]) {
			t.Fatalf("query %d: served %v, offline %v", i, ans.Value, want[i])
		}
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestBinarySanitizeAndBadFrame covers refused updates (positional acks skip
// them) and a malformed frame (BadFrame ack, then the connection closes).
func TestBinarySanitizeAndBadFrame(t *testing.T) {
	g := graph.NewDynamic(8)
	g.AddEdge(0, 1, 1)
	srv, err := New(g, testAlgo(t), testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	bc, closeBin := dialBinary(t, srv)
	defer closeBin()

	ack := bc.roundTrip([]graph.Update{
		graph.Add(2, 3, 1),   // valid
		graph.Add(4, 4, 1),   // self loop: dropped
		graph.Del(5, 6, 1),   // absent del: dropped
		graph.Add(0, 1, 2),   // duplicate add: dropped
		graph.Add(200, 1, 1), // out of range: dropped
		graph.Add(3, 2, 1),   // valid
	})
	if ack.Status != BinStatusOK || ack.Accepted != 2 || ack.Dropped != 4 {
		t.Fatalf("sanitize ack = %+v, want OK accepted=2 dropped=4", ack)
	}
	if ack.Pos != 2 {
		t.Fatalf("pos %d, want 2 (dropped updates take no position)", ack.Pos)
	}

	// A frame whose payload length is not a record multiple desyncs the
	// stream: the server acks BadFrame and closes.
	if _, err := bc.conn.Write([]byte{5, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	ack = bc.recv()
	if ack.Status != BinStatusBadFrame {
		t.Fatalf("bad frame ack status %d, want %d", ack.Status, BinStatusBadFrame)
	}
	if _, err := ReadBinAck(bc.br); err == nil {
		t.Fatal("connection still open after bad frame")
	}
	if got := srv.Counters().Get(CntBinBadFrames); got != 1 {
		t.Fatalf("bad-frame counter = %d, want 1", got)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathDifferentialAnswers is the PR's equivalence anchor: the same
// trace (valid and invalid updates interleaved) replayed through the binary
// per-update path and through a BatchMaxSize=1 JSON server must yield
// byte-identical /v1/answers bodies — same answers AND same global stream
// position, since each accepted update is one position on both paths.
func TestFastPathDifferentialAnswers(t *testing.T) {
	w1, w2 := testWorkload(t), testWorkload(t)
	a := testAlgo(t)

	mk := func(w0 *graph.Dynamic) (*Server, *httptest.Server) {
		cfg := testServerConfig()
		cfg.BatchMaxSize = 1 // batch server: one position per update
		cfg.BatchMaxWait = time.Millisecond
		srv, err := New(w0, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}
	fastSrv, fastTS := mk(w1.Initial())
	defer fastTS.Close()
	batchSrv, batchTS := mk(w2.Initial())
	defer batchTS.Close()

	var qs []core.Query
	for _, p := range w1.QueryPairsConnected(5) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	for _, q := range qs {
		for _, ts := range []*httptest.Server{fastTS, batchTS} {
			if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D}); resp.StatusCode != http.StatusOK {
				t.Fatalf("register query: status %d: %s", resp.StatusCode, body)
			}
		}
	}

	bc, closeBin := dialBinary(t, fastSrv)
	defer closeBin()

	// Build one trace with invalid updates salted in, so both paths must
	// skip the same positions.
	var trace []graph.Update
	for i := 0; i < 4; i++ {
		batch := w1.NextBatch()
		w2.NextBatch() // keep the workloads' internal bookkeeping in step
		trace = append(trace, batch...)
		trace = append(trace,
			graph.Add(7, 7, 1),                                // self loop
			graph.Del(1, 2, 0.25),                             // very likely absent
			graph.Add(1<<31, 0, 1),                            // out of range
			graph.Add(batch[0].From, batch[0].To, batch[0].W), // dup of an add just applied
		)
	}

	for _, up := range trace {
		ack := bc.roundTrip([]graph.Update{up})
		if ack.Status != BinStatusOK {
			t.Fatalf("fast path refused update %v: status %d", up, ack.Status)
		}
		// Batch server: one POST per update; one cut per update.
		postUpdatesHTTP(t, batchTS.Client(), batchTS.URL, []graph.Update{up})
	}
	waitQuiescedSrv(t, fastSrv)
	waitQuiescedSrv(t, batchSrv)

	read := func(ts *httptest.Server) []byte {
		resp, err := ts.Client().Get(ts.URL + "/v1/answers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	fastBody, batchBody := read(fastTS), read(batchTS)
	if string(fastBody) != string(batchBody) {
		t.Fatalf("answers diverge:\nfast:  %s\nbatch: %s", fastBody, batchBody)
	}
	if fastSrv.Applied() != batchSrv.Applied() {
		t.Fatalf("positions diverge: fast %d, batch %d", fastSrv.Applied(), batchSrv.Applied())
	}
	if err := fastSrv.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := batchSrv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathWALRestore proves fast-path commits are as durable as batch
// commits: updates acked over the binary protocol survive a drain + Restore,
// with the stream position and every answer intact.
func TestFastPathWALRestore(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	dir := t.TempDir()
	cfg := testServerConfig()
	cfg.WALPath = filepath.Join(dir, "srv.wal")
	cfg.CheckpointPath = filepath.Join(dir, "srv.ckpt")

	srv, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	var qs []core.Query
	for _, p := range w.QueryPairsConnected(4) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	for _, q := range qs {
		postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D})
	}

	bc, closeBin := dialBinary(t, srv)
	var acked uint64
	for i := 0; i < 5; i++ {
		ack := bc.roundTrip(w.NextBatch())
		if ack.Status != BinStatusOK {
			t.Fatalf("frame %d: status %d", i, ack.Status)
		}
		acked = ack.Pos
	}
	var before answersResponse
	getJSON(t, client, ts.URL+"/v1/answers", &before)
	closeBin()
	ts.Close()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	srv2, err := Restore(a, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Applied() != acked {
		t.Fatalf("restored position %d, want %d", srv2.Applied(), acked)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var after answersResponse
	getJSON(t, ts2.Client(), ts2.URL+"/v1/answers", &after)
	if len(after.Answers) != len(before.Answers) {
		t.Fatalf("restored %d answers, want %d", len(after.Answers), len(before.Answers))
	}
	for i := range before.Answers {
		if before.Answers[i] != after.Answers[i] {
			t.Fatalf("answer %d: before %+v, after %+v", i, before.Answers[i], after.Answers[i])
		}
	}
	if err := srv2.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathDegradedAck: when durable writes fail, fast-path frames are
// refused with a Degraded ack and never applied — the never-apply-un-durable
// rule holds on the per-update path too.
func TestFastPathDegradedAck(t *testing.T) {
	w := testWorkload(t)
	ffs := resilience.NewFaultFS(resilience.OsFS{})
	cfg := faultConfig(t, ffs)
	srv, err := New(w.Initial(), testAlgo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bc, closeBin := dialBinary(t, srv)
	defer closeBin()

	if ack := bc.roundTrip(w.NextBatch()); ack.Status != BinStatusOK {
		t.Fatalf("healthy frame: status %d", ack.Status)
	}
	posBefore := srv.Applied()
	edgesBefore := srv.edges.Load()

	ffs.FailWrites(errors.New("injected: disk full"))
	ack := bc.roundTrip(w.NextBatch())
	if ack.Status != BinStatusDegraded {
		t.Fatalf("sick-disk frame: status %d, want %d", ack.Status, BinStatusDegraded)
	}
	if ack.Accepted != 0 {
		t.Fatalf("degraded frame accepted %d updates", ack.Accepted)
	}
	if srv.Applied() != posBefore || srv.edges.Load() != edgesBefore {
		t.Fatal("degraded frame mutated server state")
	}
	if !srv.brk.Open() {
		t.Fatal("breaker did not open")
	}
	// Subsequent frames are refused at the door while the breaker is open.
	if ack := bc.roundTrip(w.NextBatch()); ack.Status != BinStatusDegraded {
		t.Fatalf("breaker-open frame: status %d, want %d", ack.Status, BinStatusDegraded)
	}
	ffs.Heal()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathConcurrentCommit hammers both write pipelines at once — JSON
// batches and several pipelined binary connections — while readers poll.
// Run under -race: the commit lock is what keeps the two writers exclusive.
func TestFastPathConcurrentCommit(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	cfg := testServerConfig()
	srv, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	for _, p := range w.QueryPairsConnected(4) {
		postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: p[0], D: p[1]})
	}

	// Pre-cut per-goroutine traces (the workload is not goroutine-safe).
	const conns, frames, perFrame = 3, 20, 8
	traces := make([][][]graph.Update, conns)
	var jsonBatches [][]graph.Update
	for i := range traces {
		for f := 0; f < frames; f++ {
			b := w.NextBatch()
			if len(b) > perFrame {
				b = b[:perFrame]
			}
			traces[i] = append(traces[i], b)
		}
	}
	for i := 0; i < 10; i++ {
		jsonBatches = append(jsonBatches, w.NextBatch())
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var resp answersResponse
					getJSON(t, client, ts.URL+"/v1/answers", &resp)
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for i := 0; i < conns; i++ {
		writers.Add(1)
		go func(trace [][]graph.Update) {
			defer writers.Done()
			bc, closeBin := dialBinary(t, srv)
			defer closeBin()
			// Pipeline: send everything, then collect ordered acks.
			for _, frame := range trace {
				bc.send(frame)
			}
			var last uint64
			for range trace {
				ack := bc.recv()
				if ack.Status != BinStatusOK {
					t.Errorf("concurrent frame status %d", ack.Status)
					return
				}
				if ack.Pos < last {
					t.Errorf("ack positions went backwards: %d after %d", ack.Pos, last)
					return
				}
				last = ack.Pos
			}
		}(traces[i])
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for _, b := range jsonBatches {
			postUpdatesHTTP(t, client, ts.URL, b)
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	waitQuiescedSrv(t, srv)
	if srv.edges.Load() != int64(srv.shadow.Load().NumEdges()) {
		t.Fatal("edge gauge diverged from shadow topology")
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	// Post-drain frames are refused, not silently queued.
	if !srv.Quiesced() {
		t.Fatal("drained server not quiesced")
	}
}
