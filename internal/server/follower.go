package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/replication"
	"cisgraph/internal/resilience"
)

// StartFollower builds a read replica (DESIGN.md §13): it bootstraps from
// the leader's latest checkpoint (or, when the leader has none yet, from
// init — which must produce the same initial topology the leader started
// from), then tails the leader's WAL on a background goroutine, applying
// each verified batch through the shadow and the pool exactly like the
// leader's applier. The follower serves reads immediately; Drain stops the
// tail before flushing.
//
// With cfg.WALPath set the follower is PROMOTABLE (DESIGN.md §17): every
// replicated record is appended and fsynced to a local WAL BEFORE it is
// applied, so the follower's tail position proves local durability (the
// leader gates sync acks on it) and Promote can seal the log at its durable
// prefix and take over. cfg.PromoteOnLeaderLoss arms the watchdog that does
// this automatically.
//
// The tail goroutine is the follower's single writer. Replica divergence is
// impossible by construction: every applied record carries the CRC the
// leader fsynced, and indices are applied strictly in order.
func StartFollower(a algo.Algorithm, cfg Config, init func() (*graph.Dynamic, error)) (*Server, error) {
	cfg = cfg.WithDefaults()
	if cfg.FollowURL == "" {
		return nil, errors.New("server: StartFollower requires FollowURL")
	}
	leader, err := replication.LeaderURL(cfg.FollowURL)
	if err != nil {
		return nil, err
	}
	cfg.FollowURL = leader
	client := &http.Client{}
	g, queries, sessions, through, epoch, err := fetchBootstrap(client, leader, init, 30*time.Second)
	if err != nil {
		return nil, err
	}
	s, err := build(g, a, queries, through, cfg, false, epoch)
	if err != nil {
		return nil, err
	}
	// The follower inherits the leader's exactly-once session table so that,
	// if promoted, it refuses the same replayed updates the old leader would
	// have (records past the checkpoint re-advance it via the tail below).
	s.dedup.load(sessions)
	s.lastSyncNano.Store(time.Now().UnixNano())
	// Persist a local bootstrap checkpoint right away: a promotable
	// follower's own WAL starts at `through`, so everything below it must be
	// coverable from local disk the moment a sibling tails us post-promotion.
	if cfg.WALPath != "" && cfg.CheckpointPath != "" {
		if cerr := s.writeCheckpoint(); cerr != nil {
			s.setLastErr(cerr)
		}
	}
	tail := replication.NewTailer(replication.TailerConfig{
		Leader:      leader,
		LongPoll:    cfg.ReplLongPoll,
		BackoffBase: cfg.ReplBackoffBase,
		BackoffMax:  cfg.ReplBackoffMax,
		Seed:        cfg.ReplSeed,
		Client:      client,
	})
	tail.Apply = s.applyReplicated
	tail.Rebootstrap = func() (uint64, error) { return s.rebootstrapFromLeader(client, tail.Leader()) }
	tail.OnStatus = s.onReplStatus
	tail.Epoch = s.Epoch
	tail.OnStaleLeader = func(uint64) (string, bool) { return s.findLeader(s.Epoch()) }
	tail.OnRepoint = s.setLeader
	s.tail = tail
	ctx, cancel := context.WithCancel(context.Background())
	s.tailStop = cancel
	s.tailDone = make(chan struct{})
	go func() {
		defer close(s.tailDone)
		if terr := tail.Run(ctx, s.applied.Load()); terr != nil && ctx.Err() == nil {
			s.setLastErr(fmt.Errorf("server: replication tail stopped: %w", terr))
		}
	}()
	if cfg.PromoteOnLeaderLoss {
		go s.runPromotionWatchdog(ctx)
	}
	return s, nil
}

// errNoCheckpoint distinguishes "leader is healthy but has not checkpointed
// yet" (bootstrap from init at index 0) from transport failures (retry).
var errNoCheckpoint = errors.New("leader has no checkpoint")

// fetchBootstrap retries the checkpoint fetch until `wait` elapses, so a
// follower started moments before its leader still comes up.
func fetchBootstrap(client *http.Client, leader string, init func() (*graph.Dynamic, error), wait time.Duration) (*graph.Dynamic, []core.Query, []dedupSession, uint64, uint64, error) {
	deadline := time.Now().Add(wait)
	for {
		g, queries, sessions, through, epoch, err := fetchCheckpoint(client, leader)
		switch {
		case err == nil:
			return g, queries, sessions, through, epoch, nil
		case errors.Is(err, errNoCheckpoint):
			if init == nil {
				return nil, nil, nil, 0, 0, errors.New("server: leader has no checkpoint and no init topology was supplied")
			}
			g, ierr := init()
			if ierr != nil {
				return nil, nil, nil, 0, 0, ierr
			}
			return g, nil, nil, 0, epoch, nil
		}
		if time.Now().After(deadline) {
			return nil, nil, nil, 0, 0, fmt.Errorf("server: bootstrap from %s: %w", leader, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// fetchCheckpoint downloads and verifies the leader's checkpoint envelope —
// the same CRC-checked CGRC format the leader fsyncs to disk — and reports
// the leader's epoch: the checkpoint's stamp, or the response's
// X-CISGraph-Epoch header when the leader promoted after its last
// checkpoint (whichever is higher). On 404 the header epoch still comes
// back so a fresh-log bootstrap adopts the right fence.
func fetchCheckpoint(client *http.Client, leader string) (*graph.Dynamic, []core.Query, []dedupSession, uint64, uint64, error) {
	resp, err := client.Get(leader + replication.PathCheckpoint)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	defer resp.Body.Close()
	hdrEpoch, _ := strconv.ParseUint(resp.Header.Get(replication.HeaderEpoch), 10, 64)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, nil, nil, 0, hdrEpoch, errNoCheckpoint
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, nil, nil, 0, 0, fmt.Errorf("checkpoint fetch: leader answered %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	through, ckptEpoch, payload, err := resilience.DecodeCheckpointMeta(data)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	epoch := ckptEpoch
	if hdrEpoch > epoch {
		epoch = hdrEpoch
	}
	g, queries, sessions, err := decodeState(payload)
	if err != nil {
		return nil, nil, nil, 0, 0, err
	}
	return g, queries, sessions, through, epoch, nil
}

// applyReplicated is the follower's single-writer apply path, invoked by
// the tailer for each verified record in strict index order. Promotable
// followers append-and-fsync the record to the local WAL FIRST: the next
// tail request's `from` then proves everything below it durable here, which
// is exactly what the leader's sync-ack gate relies on.
func (s *Server) applyReplicated(rec resilience.Record) error {
	if want := s.applied.Load(); rec.Index != want {
		return fmt.Errorf("server: replicated record %d out of order (want %d)", rec.Index, want)
	}
	if s.wal != nil {
		if next := s.wal.NextIndex(); next != rec.Index {
			return fmt.Errorf("server: local wal at %d desynced from stream record %d", next, rec.Index)
		}
		if _, err := s.wal.AppendRecords([]resilience.Record{rec}); err != nil {
			return fmt.Errorf("server: local wal append: %w", err)
		}
	}
	sh := s.shadow.Load()
	sh.Apply(rec.Batch)
	tEng := time.Now()
	changed, perr := s.pool.ApplyBatch(rec.Batch)
	s.applyLat.record(len(rec.Batch), time.Since(tEng))
	if perr != nil {
		s.h.degraded.Inc()
		s.setLastErr(perr)
	}
	s.dedup.advance(rec.SID, rec.Seq)
	pos := s.applied.Add(1)
	s.publishWatch(pos, changed)
	s.edges.Store(int64(sh.NumEdges()))
	s.h.batches.Inc()
	s.h.updates.Add(int64(len(rec.Batch)))
	if s.wal != nil && s.cfg.CheckpointEvery > 0 && pos%uint64(s.cfg.CheckpointEvery) == 0 {
		if cerr := s.writeCheckpoint(); cerr != nil {
			s.setLastErr(cerr)
		}
	}
	return nil
}

// rebootstrapFromLeader reloads follower state from the leader's current
// checkpoint after a retention race (410) or a leader that restarted
// behind us (409). The follower's registered query set is preserved —
// client-held ids stay valid — and every answer recomputes against the
// checkpoint topology before the tail resumes at the returned index. A
// promotable follower's local WAL is reset to start at the new position
// (its old records are below the checkpoint we just adopted), keeping WAL
// indices identical to stream positions.
func (s *Server) rebootstrapFromLeader(client *http.Client, leader string) (uint64, error) {
	g, _, sessions, through, epoch, err := fetchCheckpoint(client, leader)
	if err != nil {
		return 0, fmt.Errorf("server: re-bootstrap: %w", err)
	}
	casMax(&s.epoch, epoch)
	if s.wal != nil {
		if rerr := s.wal.ResetTo(through, s.Epoch()); rerr != nil {
			return 0, fmt.Errorf("server: re-bootstrap: %w", rerr)
		}
	}
	s.shadow.Store(g)
	s.pool.Rebootstrap(g)
	s.applied.Store(through)
	s.dedup.load(sessions)
	// Every answer may have moved without a per-query delta: watchers must
	// re-read. The marker carries the re-bootstrap position.
	s.hub.ResyncAll(through)
	s.edges.Store(int64(g.NumEdges()))
	if s.wal != nil && s.cfg.CheckpointPath != "" {
		// The reset WAL no longer covers anything below `through`; the local
		// checkpoint must, or a sibling tailing us post-promotion would find
		// a hole.
		if cerr := s.writeCheckpoint(); cerr != nil {
			s.setLastErr(cerr)
		}
	}
	s.setLastErr(fmt.Errorf("server: re-bootstrapped from leader checkpoint through batch %d", through))
	return through, nil
}

// onReplStatus records connectivity and lag after every tail poll, and
// adopts the leader's epoch (a follower carries its leader's fence, so a
// deposed ex-leader cannot feed it). The staleness clock (lastSyncNano)
// advances only while connected AND caught up — a partitioned or lagging
// follower's staleness grows until it heals.
func (s *Server) onReplStatus(st replication.Status) {
	if st.LeaderNext > 0 {
		s.leaderNext.Store(st.LeaderNext)
	}
	if st.Connected {
		casMax(&s.epoch, st.LeaderEpoch)
	}
	s.replConnected.Store(st.Connected)
	if st.Connected && s.applied.Load() >= s.leaderNext.Load() {
		s.lastSyncNano.Store(time.Now().UnixNano())
	}
}
