package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/replication"
	"cisgraph/internal/resilience"
)

// StartFollower builds a read replica (DESIGN.md §13): it bootstraps from
// the leader's latest checkpoint (or, when the leader has none yet, from
// init — which must produce the same initial topology the leader started
// from), then tails the leader's WAL on a background goroutine, applying
// each verified batch through the shadow and the pool exactly like the
// leader's applier. The follower serves reads immediately; Drain stops the
// tail before flushing.
//
// The tail goroutine is the follower's single writer. Replica divergence is
// impossible by construction: every applied record carries the CRC the
// leader fsynced, and indices are applied strictly in order.
func StartFollower(a algo.Algorithm, cfg Config, init func() (*graph.Dynamic, error)) (*Server, error) {
	cfg = cfg.WithDefaults()
	if cfg.FollowURL == "" {
		return nil, errors.New("server: StartFollower requires FollowURL")
	}
	leader, err := replication.LeaderURL(cfg.FollowURL)
	if err != nil {
		return nil, err
	}
	cfg.FollowURL = leader
	client := &http.Client{}
	g, queries, through, err := fetchBootstrap(client, leader, init, 30*time.Second)
	if err != nil {
		return nil, err
	}
	s, err := build(g, a, queries, through, cfg, false)
	if err != nil {
		return nil, err
	}
	s.lastSyncNano.Store(time.Now().UnixNano())
	tail := replication.NewTailer(replication.TailerConfig{
		Leader:      leader,
		LongPoll:    cfg.ReplLongPoll,
		BackoffBase: cfg.ReplBackoffBase,
		BackoffMax:  cfg.ReplBackoffMax,
		Seed:        cfg.ReplSeed,
		Client:      client,
	})
	tail.Apply = s.applyReplicated
	tail.Rebootstrap = func() (uint64, error) { return s.rebootstrapFromLeader(client, leader) }
	tail.OnStatus = s.onReplStatus
	s.tail = tail
	ctx, cancel := context.WithCancel(context.Background())
	s.tailStop = cancel
	s.tailDone = make(chan struct{})
	go func() {
		defer close(s.tailDone)
		if terr := tail.Run(ctx, s.applied.Load()); terr != nil && ctx.Err() == nil {
			s.setLastErr(fmt.Errorf("server: replication tail stopped: %w", terr))
		}
	}()
	return s, nil
}

// errNoCheckpoint distinguishes "leader is healthy but has not checkpointed
// yet" (bootstrap from init at index 0) from transport failures (retry).
var errNoCheckpoint = errors.New("leader has no checkpoint")

// fetchBootstrap retries the checkpoint fetch until `wait` elapses, so a
// follower started moments before its leader still comes up.
func fetchBootstrap(client *http.Client, leader string, init func() (*graph.Dynamic, error), wait time.Duration) (*graph.Dynamic, []core.Query, uint64, error) {
	deadline := time.Now().Add(wait)
	for {
		g, queries, through, err := fetchCheckpoint(client, leader)
		switch {
		case err == nil:
			return g, queries, through, nil
		case errors.Is(err, errNoCheckpoint):
			if init == nil {
				return nil, nil, 0, errors.New("server: leader has no checkpoint and no init topology was supplied")
			}
			g, ierr := init()
			if ierr != nil {
				return nil, nil, 0, ierr
			}
			return g, nil, 0, nil
		}
		if time.Now().After(deadline) {
			return nil, nil, 0, fmt.Errorf("server: bootstrap from %s: %w", leader, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// fetchCheckpoint downloads and verifies the leader's checkpoint envelope —
// the same CRC-checked CGRC format the leader fsyncs to disk.
func fetchCheckpoint(client *http.Client, leader string) (*graph.Dynamic, []core.Query, uint64, error) {
	resp, err := client.Get(leader + replication.PathCheckpoint)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, nil, 0, errNoCheckpoint
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, nil, 0, fmt.Errorf("checkpoint fetch: leader answered %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, 0, err
	}
	through, payload, err := resilience.DecodeCheckpointBytes(data)
	if err != nil {
		return nil, nil, 0, err
	}
	g, queries, err := decodeState(payload)
	if err != nil {
		return nil, nil, 0, err
	}
	return g, queries, through, nil
}

// applyReplicated is the follower's single-writer apply path, invoked by
// the tailer for each verified record in strict index order.
func (s *Server) applyReplicated(rec resilience.Record) error {
	if want := s.applied.Load(); rec.Index != want {
		return fmt.Errorf("server: replicated record %d out of order (want %d)", rec.Index, want)
	}
	sh := s.shadow.Load()
	sh.Apply(rec.Batch)
	tEng := time.Now()
	changed, perr := s.pool.ApplyBatch(rec.Batch)
	s.applyLat.record(len(rec.Batch), time.Since(tEng))
	if perr != nil {
		s.h.degraded.Inc()
		s.setLastErr(perr)
	}
	pos := s.applied.Add(1)
	s.publishWatch(pos, changed)
	s.edges.Store(int64(sh.NumEdges()))
	s.h.batches.Inc()
	s.h.updates.Add(int64(len(rec.Batch)))
	return nil
}

// rebootstrapFromLeader reloads follower state from the leader's current
// checkpoint after a retention race (410) or a leader that restarted
// behind us (409). The follower's registered query set is preserved —
// client-held ids stay valid — and every answer recomputes against the
// checkpoint topology before the tail resumes at the returned index.
func (s *Server) rebootstrapFromLeader(client *http.Client, leader string) (uint64, error) {
	g, _, through, err := fetchCheckpoint(client, leader)
	if err != nil {
		return 0, fmt.Errorf("server: re-bootstrap: %w", err)
	}
	s.shadow.Store(g)
	s.pool.Rebootstrap(g)
	s.applied.Store(through)
	// Every answer may have moved without a per-query delta: watchers must
	// re-read. The marker carries the re-bootstrap position.
	s.hub.ResyncAll(through)
	s.edges.Store(int64(g.NumEdges()))
	s.setLastErr(fmt.Errorf("server: re-bootstrapped from leader checkpoint through batch %d", through))
	return through, nil
}

// onReplStatus records connectivity and lag after every tail poll. The
// staleness clock (lastSyncNano) advances only while connected AND caught
// up — a partitioned or lagging follower's staleness grows until it heals.
func (s *Server) onReplStatus(st replication.Status) {
	if st.LeaderNext > 0 {
		s.leaderNext.Store(st.LeaderNext)
	}
	s.replConnected.Store(st.Connected)
	if st.Connected && s.applied.Load() >= s.leaderNext.Load() {
		s.lastSyncNano.Store(time.Now().UnixNano())
	}
}
