package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/replication"
)

// leaderConfig is testServerConfig plus durable artefacts and a tight
// replication long-poll, so follower tests converge in milliseconds.
func leaderConfig(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	cfg := testServerConfig()
	cfg.WALPath = filepath.Join(dir, "srv.wal")
	cfg.CheckpointPath = filepath.Join(dir, "srv.ckpt")
	cfg.CheckpointEvery = 4
	cfg.ReplLongPoll = 100 * time.Millisecond
	return cfg
}

func followerConfig(leaderURL string) Config {
	cfg := testServerConfig()
	cfg.FollowURL = leaderURL
	cfg.ReplLongPoll = 100 * time.Millisecond
	cfg.ReplBackoffBase = 5 * time.Millisecond
	cfg.ReplBackoffMax = 50 * time.Millisecond
	cfg.ReplSeed = 7
	return cfg
}

// waitFollowerAt blocks until the follower has applied `want` batches.
func waitFollowerAt(t *testing.T, fol *Server, want uint64) {
	t.Helper()
	waitFor(t, 10*time.Second, func() bool { return fol.Applied() >= want },
		"follower did not catch up to the leader")
}

// matchAnswers asserts two servers publish identical answers for identical
// query ids.
func matchAnswers(t *testing.T, leader, fol *Server) {
	t.Helper()
	ls, fs := leader.Pool().Answers(), fol.Pool().Answers()
	if len(ls.Values) != len(fs.Values) {
		t.Fatalf("leader has %d answers, follower %d", len(ls.Values), len(fs.Values))
	}
	for i := range ls.Values {
		if ls.Queries[i] != fs.Queries[i] {
			t.Fatalf("query %d: leader %v, follower %v", i, ls.Queries[i], fs.Queries[i])
		}
		if ls.Values[i] != fs.Values[i] {
			t.Fatalf("answer %d Q(%d->%d): leader %v, follower %v",
				i, ls.Queries[i].S, ls.Queries[i].D, ls.Values[i], fs.Values[i])
		}
	}
}

// End to end in-process: a follower bootstraps from the leader's checkpoint,
// tails its WAL, converges to identical answers, refuses writes with 421 +
// the leader's location, and stamps reads with role and staleness headers.
func TestFollowerConvergesAndServesReadOnly(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	leader, err := New(w.Initial(), a, leaderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Drain()
	lsrv := httptest.NewServer(leader.Handler())
	defer lsrv.Close()
	client := lsrv.Client()

	for _, p := range w.QueryPairsConnected(6) {
		leader.Pool().Register(core.Query{S: p[0], D: p[1]})
	}
	// Enough batches to pass a checkpoint boundary, so the follower
	// bootstrap exercises the checkpoint path (not just init + WAL tail).
	// Quiesce between posts: back-to-back posts coalesce into one window,
	// which could leave the leader short of CheckpointEvery applied batches.
	for i := 0; i < 6; i++ {
		postUpdatesHTTP(t, client, lsrv.URL, w.NextBatch())
		waitQuiescedSrv(t, leader)
	}

	fol, err := StartFollower(a, followerConfig(lsrv.URL), func() (*graph.Dynamic, error) {
		return w.Initial(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Drain()
	if fol.Role() != "follower" || leader.Role() != "leader" {
		t.Fatalf("roles: leader=%q follower=%q", leader.Role(), fol.Role())
	}
	waitFollowerAt(t, fol, leader.Applied())

	// Keep streaming: the follower must track via the long-poll tail.
	for i := 0; i < 4; i++ {
		postUpdatesHTTP(t, client, lsrv.URL, w.NextBatch())
	}
	waitQuiescedSrv(t, leader)
	waitFollowerAt(t, fol, leader.Applied())
	waitFor(t, 5*time.Second, func() bool { return fol.ReplLagBatches() == 0 }, "lag did not return to 0")
	matchAnswers(t, leader, fol)

	fsrv := httptest.NewServer(fol.Handler())
	defer fsrv.Close()

	// Writes are misdirected.
	resp, body := postJSON(t, client, fsrv.URL+"/v1/updates", updatesRequest{
		Updates: []updateJSON{{Op: "add", From: 0, To: 1, W: 1}},
	})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower POST /v1/updates: status %d (%s), want 421", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, lsrv.URL) {
		t.Fatalf("421 Location %q does not point at the leader %s", loc, lsrv.URL)
	}

	// Reads carry role + staleness headers.
	resp = getJSON(t, client, fsrv.URL+"/v1/answers", nil)
	if got := resp.Header.Get(replication.HeaderRole); got != "follower" {
		t.Fatalf("%s=%q, want follower", replication.HeaderRole, got)
	}
	if resp.Header.Get(replication.HeaderStaleness) == "" {
		t.Fatalf("missing %s header on follower read", replication.HeaderStaleness)
	}

	// A caught-up follower passes any staleness bound.
	req, _ := http.NewRequest(http.MethodGet, fsrv.URL+"/v1/answers", nil)
	req.Header.Set(replication.HeaderMaxStaleness, "50ms")
	r2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("bounded read on caught-up follower: status %d, want 200", r2.StatusCode)
	}

	// Follower healthz exposes the replication block.
	var hz healthzResponse
	getJSON(t, client, fsrv.URL+"/healthz", &hz)
	if hz.Role != "follower" || hz.Repl == nil || hz.Repl.LagBatches != 0 {
		t.Fatalf("follower healthz: %+v", hz)
	}
}

// A leader with no checkpoint yet: the follower bootstraps from init at
// index 0 and replays the whole WAL over the tail.
func TestFollowerBootstrapsWithoutCheckpoint(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	cfg := leaderConfig(t)
	cfg.CheckpointPath = ""
	cfg.CheckpointEvery = 0
	leader, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Drain()
	lsrv := httptest.NewServer(leader.Handler())
	defer lsrv.Close()

	for i := 0; i < 3; i++ {
		postUpdatesHTTP(t, lsrv.Client(), lsrv.URL, w.NextBatch())
	}
	waitQuiescedSrv(t, leader)

	fol, err := StartFollower(a, followerConfig(lsrv.URL), func() (*graph.Dynamic, error) {
		return w.Initial(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Drain()
	waitFollowerAt(t, fol, leader.Applied())
	if fol.edges.Load() != leader.edges.Load() {
		t.Fatalf("edges: leader %d, follower %d", leader.edges.Load(), fol.edges.Load())
	}
}

// Retention race: while the link is down, the leader checkpoints past the
// follower and deletes the WAL segments it still needs. On heal the tail
// gets 410, re-bootstraps from the leader's checkpoint (preserving local
// query registrations), and converges. During the partition the follower
// reports degraded staleness and 503s bounded-staleness clients.
func TestFollowerRetentionRaceRebootstraps(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	cfg := leaderConfig(t)
	cfg.WALSegmentBytes = 256 // roll nearly every batch
	cfg.CheckpointEvery = 2   // aggressive retention
	leader, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Drain()
	lsrv := httptest.NewServer(leader.Handler())
	defer lsrv.Close()
	client := lsrv.Client()

	proxy, err := replication.NewProxy(lsrv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	postUpdatesHTTP(t, client, lsrv.URL, w.NextBatch())
	waitQuiescedSrv(t, leader)

	fcfg := followerConfig("http://" + proxy.Addr())
	fcfg.MaxStaleness = 50 * time.Millisecond
	fol, err := StartFollower(a, fcfg, func() (*graph.Dynamic, error) {
		return w.Initial(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Drain()
	for _, p := range w.QueryPairsConnected(4) {
		fol.Pool().Register(core.Query{S: p[0], D: p[1]})
	}
	waitFollowerAt(t, fol, leader.Applied())

	// Partition, then advance the leader until retention deletes the WAL
	// segments the follower still needs. Quiesce per post so each post is
	// its own batch; retention trails by the active segment, so keep
	// feeding until the oldest retained record passes the follower.
	proxy.Drop()
	folAt := fol.Applied()
	waitFor(t, 20*time.Second, func() bool {
		if leader.wal.OldestIndex() > folAt {
			return true
		}
		postUpdatesHTTP(t, client, lsrv.URL, w.NextBatch())
		waitQuiescedSrv(t, leader)
		return false
	}, "retention never advanced past the follower")

	// Staleness grows past MaxStaleness while partitioned: degraded healthz,
	// bounded reads 503, unbounded reads still 200.
	waitFor(t, 5*time.Second, func() bool { return fol.replDegraded() },
		"follower did not degrade on staleness")
	fsrv := httptest.NewServer(fol.Handler())
	defer fsrv.Close()
	var hz healthzResponse
	getJSON(t, client, fsrv.URL+"/healthz", &hz)
	if hz.Status != "degraded" || !strings.Contains(hz.DegradedReason, "staleness") {
		t.Fatalf("partitioned follower healthz: %+v", hz)
	}
	req, _ := http.NewRequest(http.MethodGet, fsrv.URL+"/v1/answers", nil)
	req.Header.Set(replication.HeaderMaxStaleness, "10ms")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("bounded read on stale follower: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if r := getJSON(t, client, fsrv.URL+"/v1/answers", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("unbounded read on stale follower: status %d, want 200", r.StatusCode)
	}

	// Heal: 410 → checkpoint re-bootstrap → convergence, queries intact.
	proxy.Heal()
	waitFollowerAt(t, fol, leader.Applied())
	waitFor(t, 10*time.Second, func() bool {
		return fol.ReplLagBatches() == 0 && fol.tail.Rebootstraps.Load() > 0
	}, "follower did not re-bootstrap and catch up after heal")
	if got := fol.Pool().NumQueries(); got != 4 {
		t.Fatalf("re-bootstrap lost queries: %d, want 4", got)
	}
	// Answers on the follower's own queries must equal a fresh leader-side
	// registration of the same pairs.
	fsnap := fol.Pool().Answers()
	for i, q := range fsnap.Queries {
		_, want := leader.Pool().Register(q)
		if fsnap.Values[i] != want {
			t.Fatalf("post-rebootstrap answer Q(%d->%d): follower %v, leader %v",
				q.S, q.D, fsnap.Values[i], want)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return !fol.replDegraded() },
		"follower still degraded after catching up")
}
