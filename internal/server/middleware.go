package server

import (
	"net/http"
	"strconv"
	"time"
)

// HTTP-path overload protection (DESIGN.md §12.3): every /v1/* endpoint is
// wrapped in gate → deadline. The gate bounds concurrently executing
// requests and sheds the excess with 429 before they can pile onto the
// batcher; the deadline wraps http.TimeoutHandler, so a handler that
// overruns gets 503 while its request context is cancelled. /healthz and
// /metrics bypass the gate and run under the same deadline: operators must
// be able to observe a saturated server.

// inflightGate is a counting semaphore over in-flight requests.
type inflightGate chan struct{}

// withGate admits the request if a slot is free and sheds it with 429 +
// Retry-After otherwise. Shedding is immediate (no queueing): a client told
// to retry later is cheaper than a goroutine parked on a saturated server.
func (s *Server) withGate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
			h.ServeHTTP(w, r)
		default:
			s.h.inflightShed.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests,
				"server at max in-flight requests, retry later")
		}
	})
}

// withDeadline bounds the handler to d: the request context carries the
// deadline (http.TimeoutHandler cancels it on expiry) and the client gets a
// JSON 503. Timeouts are counted per endpoint via elapsed time — a 503
// that took the full budget is a deadline kill, not a refusal.
func (s *Server) withDeadline(d time.Duration, h http.Handler) http.Handler {
	th := http.TimeoutHandler(h, d, `{"error":"request deadline exceeded"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		th.ServeHTTP(w, r)
		if time.Since(start) >= d {
			s.h.timeouts.Inc()
		}
	})
}

// limitBody bounds the POST body before JSON decoding; the decoder surfaces
// *http.MaxBytesError, which handlers map to 413.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
}

// retryAfter stamps the standard backoff hint on 429/503 responses.
func retryAfter(w http.ResponseWriter, seconds int) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
}
