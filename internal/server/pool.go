package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/stats"
)

// QueryPool spreads pairwise queries across a fixed set of MultiCISO
// shards, each with its own topology clone, and publishes answers through
// an immutable snapshot so reads never block on batch application.
//
// Write path (single writer — the batcher's applier goroutine): ApplyBatch
// fans the sanitized batch out to every shard in parallel; each shard
// serializes on its own lock, so a concurrent Register only delays the one
// shard it lands on. The shards report per-batch answer deltas
// (core.ApplyBatchDelta), and the pool folds them into its value table:
// when answers moved, a fresh Snapshot is built and swapped in; when the
// batch changed nothing — the common case under change-driven skipping —
// publication is an O(1) position bump aliasing the previous arrays, so
// steady-state serving cost tracks the changed set, not the registered
// query count (DESIGN.md §15). The changed ids feed the watch hub.
//
// Read path: Answers loads the current Snapshot pointer — no lock shared
// with the writer, so queries are served at memory speed even while a batch
// (including its delayed work) is being applied.
type QueryPool struct {
	a      algo.Algorithm
	shards []*poolShard

	mu      sync.Mutex // registration bookkeeping + snapshot rebuilds
	refs    []qref     // global query id → shard/local position
	queries []core.Query
	locals  [][]int      // shard → local index → global id (inverse of refs)
	vals    []algo.Value // global id → current answer (guarded by mu)

	snap    atomic.Pointer[Snapshot]
	batches atomic.Uint64
}

type poolShard struct {
	mu  sync.Mutex
	eng *core.MultiCISO
}

type qref struct{ shard, local int }

// Snapshot is one immutable published view of every registered query's
// answer. Readers share it; nothing in it is ever mutated after Publish.
type Snapshot struct {
	// Batches counts the update batches applied when the snapshot was taken.
	Batches uint64
	// Queries and Values are parallel, in registration order.
	Queries []core.Query
	Values  []algo.Value
}

// NewQueryPool builds a pool of `shards` MultiCISO engines, each owning a
// clone of g. Queries are registered later with Register. workers bounds
// each shard's query-processing pool (<=1 runs serially); kind selects the
// per-query state store shared by every shard engine. skip toggles
// change-driven query skipping in the shard engines (on in production;
// Config.DisableChangeSkip turns it off for differential testing). Any
// extra options (e.g. core.WithPropagateWorkers for intra-query parallel
// propagation) are passed through to every shard engine.
func NewQueryPool(g *graph.Dynamic, a algo.Algorithm, shards, workers int, kind core.StoreKind, skip bool, extra ...core.MultiOption) *QueryPool {
	if shards < 1 {
		shards = 1
	}
	p := &QueryPool{a: a, shards: make([]*poolShard, shards), locals: make([][]int, shards)}
	opts := []core.MultiOption{core.WithWorkers(workers), core.WithStore(kind), core.WithChangeSkip(skip)}
	opts = append(opts, extra...)
	for i := range p.shards {
		eng := core.NewMultiCISO(opts...)
		eng.Reset(g.Clone(), a, nil)
		p.shards[i] = &poolShard{eng: eng}
	}
	p.snap.Store(&Snapshot{})
	return p
}

// NumShards returns the shard count.
func (p *QueryPool) NumShards() int { return len(p.shards) }

// NumQueries returns the number of registered queries.
func (p *QueryPool) NumQueries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.refs)
}

// Register arms q on the least-loaded shard (ties to the lowest index),
// runs its initial computation against that shard's current topology, and
// publishes a refreshed snapshot. The returned id is stable for the pool's
// lifetime.
func (p *QueryPool) Register(q core.Query) (id int, ans algo.Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Least-loaded keeps per-shard work balanced as queries come and go.
	best := 0
	for i := 1; i < len(p.locals); i++ {
		if len(p.locals[i]) < len(p.locals[best]) {
			best = i
		}
	}
	sh := p.shards[best]
	sh.mu.Lock()
	local, ans := sh.eng.AddQuery(q)
	sh.mu.Unlock()
	id = len(p.refs)
	p.refs = append(p.refs, qref{shard: best, local: local})
	p.queries = append(p.queries, q)
	p.vals = append(p.vals, ans)
	for len(p.locals[best]) <= local {
		p.locals[best] = append(p.locals[best], -1)
	}
	p.locals[best][local] = id
	p.publishLocked()
	return id, ans
}

// Rebootstrap swaps every shard engine onto a fresh topology, re-arming
// the registered queries in place: ids, shard placement, and local order
// are all preserved, so client-held query ids stay valid while the answers
// recompute from the new topology. Used by a follower after a checkpoint
// re-bootstrap (retention race or leader reset). Serializes against
// Register and ApplyBatch.
func (p *QueryPool) Rebootstrap(g *graph.Dynamic) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Group queries by their existing shard; refs were appended in id order,
	// so per-shard append order reproduces each query's local index.
	perShard := make([][]core.Query, len(p.shards))
	for id, r := range p.refs {
		perShard[r.shard] = append(perShard[r.shard], p.queries[id])
	}
	for i, sh := range p.shards {
		sh.mu.Lock()
		sh.eng.Reset(g.Clone(), p.a, perShard[i])
		sh.mu.Unlock()
	}
	p.reloadValsLocked()
	p.publishLocked()
}

// reloadValsLocked rebuilds the whole value table from the shard engines —
// the full O(Q) pass reserved for re-bootstraps; steady-state batches fold
// deltas instead.
func (p *QueryPool) reloadValsLocked() {
	perShard := make([][]algo.Value, len(p.shards))
	for i, sh := range p.shards {
		perShard[i] = sh.eng.Answers()
	}
	for id, r := range p.refs {
		p.vals[id] = perShard[r.shard][r.local]
	}
}

// ApplyBatch applies one sanitized batch to every shard in parallel and
// publishes the refreshed snapshot, returning the queries whose answer
// changed (global ids, ascending). The returned error joins any per-query
// degradations (recovered panics inside a shard engine); answers stay
// correct — the degraded query recomputed on the shard's consistent
// topology — so the batch still counts as applied.
func (p *QueryPool) ApplyBatch(batch []graph.Update) ([]core.ChangedAnswer, error) {
	deltas := make([]core.BatchDelta, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		wg.Add(1)
		go func(i int, sh *poolShard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			deltas[i] = sh.eng.ApplyBatchDelta(batch)
		}(i, sh)
	}
	wg.Wait()
	p.batches.Add(1)
	p.mu.Lock()
	changed := p.foldDeltasLocked(deltas)
	p.mu.Unlock()
	var err error
	for i := range deltas {
		err = joinNonNil(err, deltas[i].Err)
	}
	return changed, err
}

// ApplyUpdates runs one fast-path group through every shard's per-update
// path (core.ApplyUpdatesDelta) in parallel and publishes the refreshed
// snapshot, returning the changed queries like ApplyBatch. Each update
// counts as its own stream position — the published Snapshot.Batches
// advances by len(ups), exactly as if every update had been its own
// single-update batch. Error semantics match ApplyBatch: degradations
// join, answers stay correct, the group still counts.
func (p *QueryPool) ApplyUpdates(ups []graph.Update) (core.FastStats, []core.ChangedAnswer, error) {
	deltas := make([]core.BatchDelta, len(p.shards))
	fss := make([]core.FastStats, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		wg.Add(1)
		go func(i int, sh *poolShard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			fss[i], deltas[i], _ = sh.eng.ApplyUpdatesDelta(ups)
		}(i, sh)
	}
	wg.Wait()
	p.batches.Add(uint64(len(ups)))
	p.mu.Lock()
	changed := p.foldDeltasLocked(deltas)
	p.mu.Unlock()
	var fs core.FastStats
	var err error
	for i := range p.shards {
		// Shards disagree only on routing (they hold different query
		// subsets); report the widest view — the max unsafe count across
		// shards — so operators see how much of the group serialized.
		if fss[i].Unsafe > fs.Unsafe {
			fs.Unsafe = fss[i].Unsafe
		}
		err = joinNonNil(err, deltas[i].Err)
	}
	fs.Safe = len(ups) - fs.Unsafe
	return fs, changed, err
}

// foldDeltasLocked maps each shard's changed local indices to global ids,
// updates the value table, and publishes. Batches whose answers all held
// still publish — an O(1) snapshot aliasing the previous arrays with the
// advanced position — so Snapshot.Batches always reflects the applied
// stream. Returns the changed set in ascending global-id order.
func (p *QueryPool) foldDeltasLocked(deltas []core.BatchDelta) []core.ChangedAnswer {
	var changed []core.ChangedAnswer
	for si := range deltas {
		for _, ca := range deltas[si].Changed {
			id := p.locals[si][ca.Index]
			p.vals[id] = ca.Value
			changed = append(changed, core.ChangedAnswer{Index: id, Value: ca.Value})
		}
	}
	if len(changed) == 0 {
		old := p.snap.Load()
		p.snap.Store(&Snapshot{Batches: p.batches.Load(), Queries: old.Queries, Values: old.Values})
		return nil
	}
	sort.Slice(changed, func(a, b int) bool { return changed[a].Index < changed[b].Index })
	p.publishLocked()
	return changed
}

// publishLocked rebuilds and swaps in the answer snapshot from the value
// table. Callers hold p.mu, which orders publications from the applier and
// from Register.
func (p *QueryPool) publishLocked() {
	p.snap.Store(&Snapshot{
		Batches: p.batches.Load(),
		Queries: append([]core.Query(nil), p.queries...),
		Values:  append([]algo.Value(nil), p.vals...),
	})
}

// Answers returns the current published snapshot. The result is shared and
// immutable; callers must not modify it.
func (p *QueryPool) Answers() *Snapshot { return p.snap.Load() }

// Batches returns the number of batches applied.
func (p *QueryPool) Batches() uint64 { return p.batches.Load() }

// StateBytes sums the resident per-query state footprint across all shard
// engines (store payloads plus shared sparse baselines, each counted once).
func (p *QueryPool) StateBytes() int64 {
	var total int64
	for _, sh := range p.shards {
		total += sh.eng.StateBytes()
	}
	return total
}

// Store reports the state-store kind the shard engines were built with.
func (p *QueryPool) Store() core.StoreKind {
	return p.shards[0].eng.Store()
}

// Counters returns a merged copy of every shard's engine counters.
func (p *QueryPool) Counters() *stats.Counters {
	merged := stats.NewCounters()
	for _, sh := range p.shards {
		merged.AddAll(sh.eng.Counters())
	}
	return merged
}

// QueriesSnapshot returns a copy of the registered queries in id order.
func (p *QueryPool) QueriesSnapshot() []core.Query {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]core.Query(nil), p.queries...)
}

// joinNonNil combines two possibly-nil errors.
func joinNonNil(a, b error) error {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return fmt.Errorf("%w; %w", a, b)
	}
}
