package server

import (
	"sync"
	"testing"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/stream"
)

func testWorkload(t *testing.T) *stream.Workload {
	t.Helper()
	ds := graph.RMAT("srv", 8, 2400, graph.DefaultRMAT, 16, 99)
	w, err := stream.New(ds, stream.DefaultConfig(len(ds.Arcs), 7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testAlgo(t *testing.T) algo.Algorithm {
	t.Helper()
	a, err := algo.ByName("PPSP")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// A sharded pool must publish exactly the answers a single MultiCISO over the
// same stream computes, regardless of which shard each query landed on.
func TestQueryPoolMatchesSingleEngine(t *testing.T) {
	for _, shards := range []int{1, 3} {
		w := testWorkload(t)
		a := testAlgo(t)
		var qs []core.Query
		for _, p := range w.QueryPairsConnected(6) {
			qs = append(qs, core.Query{S: p[0], D: p[1]})
		}

		ref := core.NewMultiCISO()
		ref.Reset(w.Initial(), a, qs)

		pool := NewQueryPool(w.Initial(), a, shards, 1, core.StoreDense, true)
		for _, q := range qs {
			pool.Register(q)
		}
		if got := pool.NumShards(); got != shards {
			t.Fatalf("NumShards=%d, want %d", got, shards)
		}

		for i := 0; i < 10; i++ {
			batch := w.NextBatch()
			ref.ApplyBatch(batch)
			if _, err := pool.ApplyBatch(batch); err != nil {
				t.Fatalf("shards=%d batch %d: %v", shards, i, err)
			}
		}
		snap := pool.Answers()
		if snap.Batches != 10 {
			t.Errorf("shards=%d: snapshot batches=%d, want 10", shards, snap.Batches)
		}
		want := ref.Answers()
		for i := range qs {
			if snap.Values[i] != want[i] {
				t.Errorf("shards=%d query %d Q(%d->%d): pool=%v ref=%v",
					shards, i, qs[i].S, qs[i].D, snap.Values[i], want[i])
			}
		}
	}
}

// Registration spreads queries across shards (least-loaded placement).
func TestQueryPoolBalancesShards(t *testing.T) {
	w := testWorkload(t)
	pool := NewQueryPool(w.Initial(), testAlgo(t), 4, 1, core.StoreDense, true)
	for _, p := range w.QueryPairs(8) {
		pool.Register(core.Query{S: p[0], D: p[1]})
	}
	load := make(map[int]int)
	for _, r := range pool.refs {
		load[r.shard]++
	}
	for sh := 0; sh < 4; sh++ {
		if load[sh] != 2 {
			t.Errorf("shard %d holds %d queries, want 2 (load %v)", sh, load[sh], load)
		}
	}
}

// Readers must always observe a coherent snapshot while the single writer
// applies batches and new queries register. Run with -race.
func TestQueryPoolSnapshotUnderLoad(t *testing.T) {
	w := testWorkload(t)
	pool := NewQueryPool(w.Initial(), testAlgo(t), 2, 1, core.StoreDense, true)
	pairs := w.QueryPairs(6)
	for _, p := range pairs[:4] {
		pool.Register(core.Query{S: p[0], D: p[1]})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := pool.Answers()
				if len(snap.Queries) != len(snap.Values) {
					t.Error("torn snapshot: queries and values lengths differ")
					return
				}
				pool.Counters()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		if _, err := pool.ApplyBatch(w.NextBatch()); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			pool.Register(core.Query{S: pairs[4][0], D: pairs[4][1]})
		}
	}
	close(stop)
	wg.Wait()

	if got := pool.NumQueries(); got != 5 {
		t.Fatalf("NumQueries=%d, want 5", got)
	}
	if got := len(pool.QueriesSnapshot()); got != 5 {
		t.Fatalf("QueriesSnapshot len=%d, want 5", got)
	}
	if got := pool.Batches(); got != 8 {
		t.Fatalf("Batches=%d, want 8", got)
	}
}
