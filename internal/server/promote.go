package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Leadership transitions (DESIGN.md §17). The epoch is the fencing token:
// a single uint64 stamped into WAL segment headers and checkpoint metadata,
// exchanged on every replication request, and bumped by exactly one action —
// promotion. Fencing invariants:
//
//  1. A node never accepts replication streams from a peer with a LOWER
//     epoch (Tailer-side fence), and never serves its log as authoritative
//     to a peer that has proven a HIGHER epoch (Source-side 412).
//  2. Promotion seals the follower's log at its durable prefix (stopping
//     the tail goroutine removes the only writer), THEN bumps the epoch
//     past every epoch this node has ever observed, so two nodes can race
//     to promote but the cluster converges on the highest epoch: the loser
//     demotes the moment any request carries the winner's epoch.
//  3. A deposed leader that comes back does not need to be told: the first
//     replication request it serves or poll it makes carries a higher
//     epoch, and it demotes to follower before committing anything.

// Epoch returns the node's current leadership epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// LeaderURL returns the base URL of the leader this node defers writes to
// ("" on leaders, and on followers that have not yet located one).
func (s *Server) LeaderURL() string {
	if p := s.curLeader.Load(); p != nil {
		return *p
	}
	return ""
}

func (s *Server) setLeader(url string) { s.curLeader.Store(&url) }

// casMax advances a monotone atomic to v if v is higher.
func casMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// onPeerEpoch handles a replication peer proving an epoch above ours — the
// signal that this node was deposed while it was not looking (invariant 3).
func (s *Server) onPeerEpoch(peer uint64) {
	casMax(&s.maxPeerEpoch, peer)
	if peer > s.epoch.Load() && !s.isFollower() {
		s.demote(peer)
	}
}

// demote turns a deposed leader into a write-refusing follower. The write
// pipelines observe the flag under the commit lock (applyBatch, commitGroup),
// so nothing commits after the flip. Locating the new leader — to populate
// 421 Locations — happens asynchronously; until then writes are refused with
// "leader unknown".
func (s *Server) demote(peerEpoch uint64) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.isFollower() {
		return
	}
	s.followerFlag.Store(true)
	s.setLeader("")
	s.h.demotions.Inc()
	s.setLastErr(fmt.Errorf("server: demoted: peer proved epoch %d above ours (%d)", peerEpoch, s.epoch.Load()))
	go func() {
		if leader, ok := s.findLeader(peerEpoch); ok {
			s.setLeader(leader)
		}
	}()
}

// Promote turns this follower into the leader: stop tailing (sealing the
// local WAL at its durable prefix — the tail goroutine was its only writer),
// bump the epoch past everything this node has ever observed, reopen the WAL
// under the new epoch, and start accepting writes. Idempotent: promoting a
// leader reports promoted=false. Returns the node's (possibly new) epoch.
func (s *Server) Promote() (uint64, bool, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.draining.Load() {
		return s.epoch.Load(), false, errors.New("server: promote: draining")
	}
	if !s.isFollower() {
		return s.epoch.Load(), false, nil
	}
	if s.wal == nil {
		return s.epoch.Load(), false, errors.New("server: promote: follower has no local WAL (start it with -wal to make it promotable)")
	}
	// Stop the tail loop and wait for the goroutine: after this the durable
	// prefix is final and no replicated record can interleave with writes.
	if s.tailStop != nil {
		s.tailStop()
		<-s.tailDone
	}
	epoch := s.epoch.Load()
	if mp := s.maxPeerEpoch.Load(); mp > epoch {
		epoch = mp
	}
	epoch++
	if err := s.wal.BumpEpoch(epoch); err != nil {
		return s.epoch.Load(), false, fmt.Errorf("server: promote: %w", err)
	}
	s.epoch.Store(epoch)
	s.followerFlag.Store(false)
	s.setLeader("")
	s.replConnected.Store(false)
	s.h.promotions.Inc()
	// Persist the new epoch immediately: a crash right after promotion must
	// come back fenced at (at least) this epoch. Best-effort — the WAL
	// segment header already carries it.
	if err := s.writeCheckpoint(); err != nil {
		s.setLastErr(err)
	}
	return epoch, true, nil
}

// handlePromote is POST /v1/admin/promote: the operator (or a sibling's
// watchdog, or the chaos harness) orders this follower to take over.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	epoch, promoted, err := s.Promote()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted": promoted,
		"epoch":    epoch,
		"role":     s.Role(),
	})
}

// findLeader probes the configured peer list for a node serving as leader at
// minEpoch or above, returning the best (highest-epoch) match. Used to
// re-point after a failover and to avoid split promotion in the watchdog.
func (s *Server) findLeader(minEpoch uint64) (string, bool) {
	client := &http.Client{Timeout: time.Second}
	var bestURL string
	var bestEpoch uint64
	found := false
	for _, peer := range s.cfg.Peers {
		if peer == "" || peer == s.cfg.AdvertiseURL {
			continue
		}
		resp, err := client.Get(peer + "/healthz")
		if err != nil {
			continue
		}
		var h struct {
			Role  string `json:"role"`
			Epoch uint64 `json:"epoch"`
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
		resp.Body.Close()
		if derr != nil || h.Role != "leader" || h.Epoch < minEpoch {
			continue
		}
		if !found || h.Epoch > bestEpoch {
			bestURL, bestEpoch, found = peer, h.Epoch, true
		}
	}
	return bestURL, found
}

// anyLongerFollower reports whether some peer follower has applied more of
// the stream than this node. The watchdog defers self-promotion to it —
// longest-log-wins, the Raft vote restriction in miniature: with
// SyncFollowers=k an acked update is only guaranteed durable on k followers,
// so promoting a shorter log could discard updates the dead leader acked.
// The longest follower never defers, so exactly one node acts.
func (s *Server) anyLongerFollower() bool {
	client := &http.Client{Timeout: time.Second}
	mine := s.applied.Load()
	for _, peer := range s.cfg.Peers {
		if peer == "" || peer == s.cfg.AdvertiseURL {
			continue
		}
		resp, err := client.Get(peer + "/healthz")
		if err != nil {
			continue
		}
		var h struct {
			Role    string `json:"role"`
			Batches uint64 `json:"batches"`
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
		resp.Body.Close()
		if derr == nil && h.Role == "follower" && h.Batches > mine {
			return true
		}
	}
	return false
}

// promotionRank orders the followers deterministically for watchdog
// promotion: this node's position in cfg.Peers, not counting the node
// currently believed to be leader. Rank r waits PromoteAfter×(r+1) before
// acting, so the preferred successor (first surviving peer in the shared
// list) almost always wins and the others discover it instead of racing.
func (s *Server) promotionRank() int {
	leader := s.LeaderURL()
	rank := 0
	for _, peer := range s.cfg.Peers {
		if peer == leader {
			continue
		}
		if peer == s.cfg.AdvertiseURL {
			return rank
		}
		rank++
	}
	return rank
}

// runPromotionWatchdog is the -promote-on-leader-loss loop: while this node
// is a follower, watch replication connectivity; after the leader has been
// unreachable for this node's patience window, either re-point to a peer
// that already promoted or promote ourselves. Exits once the node stops
// being a follower (promoted, or drained).
func (s *Server) runPromotionWatchdog(ctx context.Context) {
	tick := s.cfg.PromoteAfter / 8
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var lostSince time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if s.draining.Load() || !s.isFollower() {
			return
		}
		if s.replConnected.Load() {
			lostSince = time.Time{}
			continue
		}
		if lostSince.IsZero() {
			lostSince = time.Now()
			continue
		}
		patience := s.cfg.PromoteAfter * time.Duration(s.promotionRank()+1)
		if time.Since(lostSince) < patience {
			continue
		}
		// Before grabbing leadership, check whether a better-ranked peer beat
		// us to it — repointing is always cheaper than a competing epoch.
		if leader, ok := s.findLeader(s.Epoch() + 1); ok {
			s.setLeader(leader)
			if s.tail != nil {
				s.tail.Repoint(leader)
			}
			lostSince = time.Time{}
			continue
		}
		if s.anyLongerFollower() {
			continue // it holds acked records we might not; let it act first
		}
		if _, promoted, err := s.Promote(); err != nil {
			s.setLastErr(fmt.Errorf("server: watchdog promote: %w", err))
			lostSince = time.Time{} // re-arm; conditions may heal
		} else if promoted {
			return
		}
	}
}
