package server

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/replication"
	"cisgraph/internal/resilience"
)

// Partition/failover chaos harness (DESIGN.md §13.4): a real cisgraphd
// leader with two follower processes — one on a direct link, one behind a
// fault-injecting TCP proxy. Five cycles rotate the failure mode mid-ingest:
// SIGKILL the leader and restart it with -resume, SIGSTOP/SIGCONT it, and
// drop the proxied link. After every heal, both followers must converge to
// answers identical to an offline replay of the leader's durable prefix
// (checkpoint + WAL) AND byte-identical to the leader's own /v1/answers
// body, with cisgraph_repl_lag_batches back at 0.
//
// Everything is seeded: the ingest stream, the follower backoff jitter, and
// the fault schedule. A failure reproduces.

const replChaosCycles = 5

type replChaosHealthz struct {
	Status  string `json:"status"`
	Batches uint64 `json:"batches"`
	Role    string `json:"role"`
	Repl    *struct {
		LagBatches uint64  `json:"lag_batches"`
		Staleness  float64 `json:"staleness_s"`
		Connected  bool    `json:"connected"`
	} `json:"repl"`
}

func getReplHealthz(t *testing.T, client *http.Client, base string) replChaosHealthz {
	t.Helper()
	var hz replChaosHealthz
	getJSONChaos(t, client, base+"/healthz", &hz)
	return hz
}

func TestChaosReplicationPartitionFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("replication chaos skipped in -short")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(dir, "ckpt")
	leaderAddr := freeAddr(t)
	leaderBase := "http://" + leaderAddr
	client := &http.Client{Timeout: 5 * time.Second}
	a, err := algo.ByName("PPSP")
	if err != nil {
		t.Fatal(err)
	}
	initTopo := func() *graph.Dynamic {
		return graph.FromEdgeList(graph.StandInOR.MustBuild(8, 7))
	}
	n := initTopo().NumVertices()

	leaderArgs := []string{
		"-standin", "OR", "-scale", "8", "-seed", "7", "-algo", "PPSP",
		"-addr", leaderAddr, "-batch-size", "32", "-batch-wait", "2ms",
		"-wal", walDir, "-wal-segment-bytes", "4096",
		"-checkpoint", ckpt, "-checkpoint-every", "4",
		"-repl-longpoll", "300ms",
	}
	leader, leaderLog := startDaemon(t, bin, append(leaderArgs, "-queries", chaosQueryPairs))
	waitDaemonHealthy(t, client, leaderBase, leader, leaderLog)

	// Ingest past the first checkpoint so followers bootstrap from it and
	// inherit the leader's query registrations.
	rng := rand.New(rand.NewSource(4242))
	ingestUntil(t, client, leaderBase, rng, n, 6, leaderLog)

	// Follower A: direct link. Follower B: behind the drop/heal proxy.
	proxy, err := replication.NewProxy(leaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	folBases := make([]string, 2)
	folLogs := make([]*bytes.Buffer, 2)
	for i, up := range []string{leaderBase, "http://" + proxy.Addr()} {
		addr := freeAddr(t)
		folBases[i] = "http://" + addr
		cmd, logBuf := startDaemon(t, bin, []string{
			"-standin", "OR", "-scale", "8", "-seed", "7", "-algo", "PPSP",
			"-addr", addr, "-follow", up, "-repl-longpoll", "300ms",
			"-repl-seed", "9", "-max-staleness", "30s",
		})
		folLogs[i] = logBuf
		waitDaemonHealthy(t, client, folBases[i], cmd, logBuf)
	}

	for cycle := 0; cycle < replChaosCycles; cycle++ {
		// Keep POSTs in the air so every fault lands inside live ingestion.
		stopFlood := make(chan struct{})
		floodDone := make(chan struct{})
		go func() {
			defer close(floodDone)
			for {
				select {
				case <-stopFlood:
					return
				default:
					postChaosUpdates(client, leaderBase, rng, n)
				}
			}
		}()

		switch cycle % 3 {
		case 0: // leader dies without drain; restarts from the durable prefix
			time.Sleep(50 * time.Millisecond)
			if err := leader.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			leader.Wait()
			time.Sleep(200 * time.Millisecond) // followers see the dead leader
			leader, leaderLog = startDaemon(t, bin, append(leaderArgs, "-resume"))
			waitDaemonHealthy(t, client, leaderBase, leader, leaderLog)
		case 1: // leader freezes mid-stream, then resumes
			if err := leader.Process.Signal(syscall.SIGSTOP); err != nil {
				t.Fatal(err)
			}
			time.Sleep(400 * time.Millisecond)
			if err := leader.Process.Signal(syscall.SIGCONT); err != nil {
				t.Fatal(err)
			}
		case 2: // the proxied follower's link drops, the direct one keeps up
			proxy.Drop()
			time.Sleep(400 * time.Millisecond)
			proxy.Heal()
		}

		close(stopFlood)
		<-floodDone

		// Heal phase: push a little more traffic, let the leader go idle,
		// then require both followers to drain their lag to zero.
		ingestUntil(t, client, leaderBase, rng, n, getHealthz(t, client, leaderBase).Batches+4, leaderLog)
		leaderBatches := waitLeaderIdle(t, client, leaderBase)
		for i, fb := range folBases {
			waitFollowerConverged(t, client, fb, leaderBatches, cycle, i, folLogs[i])
		}

		// Ground truth: offline replay of the leader's on-disk prefix. The
		// leader is idle, so checkpoint + WAL are stable under our feet.
		qs, want := replayDurableAnswers(t, a, walDir, ckpt, leaderBatches, cycle)
		leaderBody := answersBody(t, client, leaderBase)
		for i, fb := range folBases {
			body := answersBody(t, client, fb)
			if !bytes.Equal(body, leaderBody) {
				t.Fatalf("cycle %d: follower %d answers body differs from leader\nleader: %s\nfollower: %s",
					cycle, i, leaderBody, body)
			}
			checkServedAnswers(t, client, fb, qs, want, cycle, i)
			assertFollowerCaughtUpMetrics(t, client, fb, cycle, i)
		}
		t.Logf("cycle %d (%s): %d batches durable, both followers identical to offline replay",
			cycle, [...]string{"SIGKILL+resume", "SIGSTOP/CONT", "link drop"}[cycle%3], leaderBatches)
	}

	// Read-only discipline survived the whole run: a write to a follower is
	// still misdirected to the leader.
	resp, err := client.Post(folBases[0]+"/v1/updates", "application/json",
		strings.NewReader(`{"updates":[{"op":"add","from":0,"to":1,"w":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower write after chaos: status %d, want 421", resp.StatusCode)
	}
	if resp.Header.Get("Location") == "" {
		t.Error("421 without a Location pointing at the leader")
	}
}

// ingestUntil posts seeded updates until the leader has applied `target`
// batches.
func ingestUntil(t *testing.T, client *http.Client, base string, rng *rand.Rand, n int, target uint64, logBuf *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for getHealthz(t, client, base).Batches < target {
		if time.Now().After(deadline) {
			t.Fatalf("ingest stalled before batch %d\ndaemon log:\n%s", target, logBuf.String())
		}
		postChaosUpdates(client, base, rng, n)
	}
}

// waitLeaderIdle waits for the leader's applied count to stop moving (two
// identical reads 100ms apart) and returns it; with no traffic in flight the
// durable artefacts are stable for offline replay.
func waitLeaderIdle(t *testing.T, client *http.Client, base string) uint64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	prev := getHealthz(t, client, base).Batches
	for {
		time.Sleep(100 * time.Millisecond)
		cur := getHealthz(t, client, base).Batches
		if cur == prev {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never went idle (batches still moving at %d)", cur)
		}
		prev = cur
	}
}

func waitFollowerConverged(t *testing.T, client *http.Client, base string, leaderBatches uint64, cycle, idx int, logBuf *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		hz := getReplHealthz(t, client, base)
		if hz.Role == "follower" && hz.Repl != nil && hz.Repl.LagBatches == 0 &&
			hz.Batches >= leaderBatches && hz.Repl.Connected {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cycle %d: follower %d stuck at batch %d (leader %d, repl %+v)\nfollower log:\n%s",
				cycle, idx, hz.Batches, leaderBatches, hz.Repl, logBuf.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// replayDurableAnswers rebuilds the leader's durable state offline
// (checkpoint topology + WAL suffix) and runs the checkpointed queries
// through an independent single-engine replay.
func replayDurableAnswers(t *testing.T, a algo.Algorithm, walDir, ckpt string, leaderBatches uint64, cycle int) ([]core.Query, []algo.Value) {
	t.Helper()
	through, payload, err := resilience.ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatalf("cycle %d: checkpoint read: %v", cycle, err)
	}
	g, qs, err := DecodeCheckpointState(payload)
	if err != nil {
		t.Fatalf("cycle %d: checkpoint decode: %v", cycle, err)
	}
	recs, err := resilience.ReplaySegmented(walDir)
	if err != nil {
		t.Fatalf("cycle %d: WAL replay: %v", cycle, err)
	}
	durable := through
	for _, rec := range recs {
		if rec.Index < through {
			continue
		}
		if rec.Index != durable {
			t.Fatalf("cycle %d: WAL gap: record %d, expected %d", cycle, rec.Index, durable)
		}
		g.Apply(rec.Batch)
		durable++
	}
	if durable != leaderBatches {
		t.Fatalf("cycle %d: leader serves batch %d, durable prefix holds %d", cycle, leaderBatches, durable)
	}
	ref := core.NewMultiCISO()
	ref.Reset(g, a, qs)
	return qs, ref.Answers()
}

func checkServedAnswers(t *testing.T, client *http.Client, base string, qs []core.Query, want []algo.Value, cycle, idx int) {
	t.Helper()
	var served answersPayloadTest
	getJSONChaos(t, client, base+"/v1/answers", &served)
	if len(served.Answers) != len(qs) {
		t.Fatalf("cycle %d: follower %d serves %d answers, durable state has %d queries",
			cycle, idx, len(served.Answers), len(qs))
	}
	for i, ans := range served.Answers {
		if ans.S != qs[i].S || ans.D != qs[i].D {
			t.Fatalf("cycle %d: follower %d answer %d is Q(%d->%d), durable query is Q(%d->%d)",
				cycle, idx, i, ans.S, ans.D, qs[i].S, qs[i].D)
		}
		if float64(ans.Value) != want[i] {
			t.Errorf("cycle %d: follower %d Q(%d->%d): serves %v, durable replay gives %v",
				cycle, idx, ans.S, ans.D, float64(ans.Value), want[i])
		}
	}
}

// answersBody fetches /v1/answers raw and asserts the follower-facing
// replication headers ride along.
func answersBody(t *testing.T, client *http.Client, base string) []byte {
	t.Helper()
	resp, err := client.Get(base + "/v1/answers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/v1/answers: status %d", base, resp.StatusCode)
	}
	if role := resp.Header.Get(replication.HeaderRole); role == "follower" {
		if resp.Header.Get(replication.HeaderStaleness) == "" {
			t.Errorf("%s: follower answer without %s header", base, replication.HeaderStaleness)
		}
	}
	return body
}

func assertFollowerCaughtUpMetrics(t *testing.T, client *http.Client, base string, cycle, idx int) {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	m := buf.String()
	if !strings.Contains(m, "cisgraph_repl_lag_batches 0") {
		t.Errorf("cycle %d: follower %d metrics lack cisgraph_repl_lag_batches 0", cycle, idx)
	}
	if !strings.Contains(m, `cisgraph_role{role="follower"} 1`) {
		t.Errorf("cycle %d: follower %d metrics lack the follower role gauge", cycle, idx)
	}
}
