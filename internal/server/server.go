// Package server turns the CISGraph engine library into a long-running
// network service: an HTTP/JSON API over a sharded multi-query pool, fed by
// a batched ingestion pipeline that mirrors the paper's batch-gathering
// model, wrapped in the PR 1 resilience envelope (sanitized ingest, WAL,
// atomic checkpoints, graceful drain). DESIGN.md §10 documents the
// architecture.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/replication"
	"cisgraph/internal/resilience"
	"cisgraph/internal/stats"
	"cisgraph/internal/watch"
)

// Server-side counter names, rendered by GET /metrics alongside the merged
// engine counters.
const (
	// CntUpdatesAccepted counts updates admitted into the ingest queue.
	CntUpdatesAccepted = "srv_updates_accepted"
	// CntUpdatesShed counts queued updates dropped by OverflowShed.
	CntUpdatesShed = "srv_updates_shed"
	// CntPostsRejected counts POST /v1/updates requests refused by
	// backpressure (queue full under OverflowReject) or during drain.
	CntPostsRejected = "srv_posts_rejected"
	// CntBatchesApplied counts batches that went through the full
	// sanitize→WAL→apply pipeline.
	CntBatchesApplied = "srv_batches_applied"
	// CntUpdatesApplied counts sanitized updates applied to the engines.
	CntUpdatesApplied = "srv_updates_applied"
	// CntCutSize / CntCutTimer / CntCutDrain count batch cuts by window
	// trigger.
	CntCutSize  = "srv_batch_cut_size"
	CntCutTimer = "srv_batch_cut_timer"
	CntCutDrain = "srv_batch_cut_drain"
	// CntQueriesRegistered counts POST /v1/query registrations.
	CntQueriesRegistered = "srv_queries_registered"
	// CntBatchDegraded counts batches during which at least one query
	// degraded (recovered panic) inside a shard engine.
	CntBatchDegraded = "srv_batch_degraded"
	// CntCheckpoints counts checkpoints written (periodic + drain).
	CntCheckpoints = "srv_checkpoints"
	// CntInflightShed counts requests shed with 429 by the in-flight gate.
	CntInflightShed = "srv_inflight_shed"
	// CntRequestTimeouts counts requests killed by the per-endpoint deadline.
	CntRequestTimeouts = "srv_request_timeouts"
	// CntBodyTooLarge counts POSTs refused with 413 (body over MaxBodyBytes).
	CntBodyTooLarge = "srv_body_too_large"
	// CntBatchesDroppedDegraded / CntUpdatesDroppedDegraded count batches
	// (and the updates inside them) discarded because the disk breaker was
	// open or the WAL append failed: an un-durable batch is never applied,
	// keeping served answers consistent with the durable prefix.
	CntBatchesDroppedDegraded = "srv_batches_dropped_degraded"
	CntUpdatesDroppedDegraded = "srv_updates_dropped_degraded"
	// CntWALSegmentsDeleted counts WAL segments removed by
	// checkpoint-coordinated retention.
	CntWALSegmentsDeleted = "srv_wal_segments_deleted"
	// CntStaleReadsRejected counts follower reads refused with 503 because
	// the replica's staleness exceeded the client's X-CISGraph-Max-Staleness
	// bound.
	CntStaleReadsRejected = "srv_stale_reads_rejected"
	// CntFastGroups / CntFastUpdates count fast-path group commits and the
	// updates inside them (each update is its own stream position).
	CntFastGroups  = "srv_fastpath_groups"
	CntFastUpdates = "srv_fastpath_updates"
	// CntFastDropped counts fast-path updates refused by the sanitizer.
	CntFastDropped = "srv_fastpath_dropped"
	// CntBinConns / CntBinFrames / CntBinBadFrames count binary-protocol
	// ingest connections, well-formed frames, and protocol violations.
	CntBinConns     = "srv_binary_conns"
	CntBinFrames    = "srv_binary_frames"
	CntBinBadFrames = "srv_binary_bad_frames"
	// CntWatchConns counts /v1/watch subscriptions accepted (SSE + long-poll).
	CntWatchConns = "srv_watch_conns"
	// CntWatchRejected counts /v1/watch subscriptions shed (MaxWatchers cap
	// or draining).
	CntWatchRejected = "srv_watch_rejected"
	// CntAnswersCacheHits / CntAnswersCacheMisses count /v1/answers full
	// listings served from (or rebuilding) the per-position encoded body.
	CntAnswersCacheHits   = "srv_answers_cache_hits"
	CntAnswersCacheMisses = "srv_answers_cache_misses"
	// CntDedupHits counts fast-path updates recognized as duplicates of
	// already-accepted (session, seq) records and skipped — the exactly-once
	// resume path absorbing a client replay (DESIGN.md §17).
	CntDedupHits = "srv_dedup_hits"
	// CntSyncAckTimeouts counts replication-gated fast-path acks refused
	// Degraded because no follower passed the commit within SyncAckTimeout.
	CntSyncAckTimeouts = "srv_sync_ack_timeouts"
	// CntPromotions / CntDemotions count leadership transitions on this node.
	CntPromotions = "srv_promotions"
	CntDemotions  = "srv_demotions"
)

// Server is the cisgraphd serving core: it owns the shadow topology, the
// ingestion pipeline and the query pool, and exposes them over HTTP.
//
// Concurrency model (single-writer/many-reader): the commit lock admits
// exactly one writer of the shadow topology and the shard engines at a time
// — the batcher's applier goroutine (JSON/batch path) and the fast path's
// commit goroutine (binary/per-update path, DESIGN.md §14) take turns on
// it; on a follower the tail goroutine is the sole writer. HTTP readers
// consume the pool's atomic answer snapshot and the server's atomic gauges,
// so GET paths never contend with commit work. Query registration is the
// one cross-cutting write; it serializes against the writers per shard,
// between commits.
type Server struct {
	cfg  Config
	a    algo.Algorithm
	pool *QueryPool
	bat  *Batcher
	fp   *fastPath
	san  *resilience.Sanitizer
	wal  *resilience.SegmentedWAL
	brk  *diskBreaker
	gate inflightGate

	// commitMu serializes the two write pipelines (batch applier and
	// fast-path commit loop) over the shadow + pool + WAL + position.
	commitMu sync.Mutex

	// shadow is the authoritative topology. It is mutated only by the
	// single writer (the batcher's applier goroutine on a leader, the tail
	// goroutine on a follower); the pointer itself is atomic because a
	// follower re-bootstrap swaps in a whole new topology while HTTP
	// readers are live.
	shadow atomic.Pointer[graph.Dynamic]

	// applyLat records engine-side apply latency per batch-size class
	// (applylat.go); every write pipeline (batcher, WAL replay, follower
	// tail) feeds it and /healthz reports the percentiles.
	applyLat applyLatRecorder

	cnt *stats.Counters
	h   srvHandles

	applied  atomic.Uint64 // sanitized batches applied (incl. restored)
	edges    atomic.Int64  // shadow edge count, published after each batch
	draining atomic.Bool
	lastErr  atomic.Pointer[string]

	// Leadership (DESIGN.md §17). epoch is the fencing token: stamped into
	// WAL segment headers and checkpoints, exchanged on every replication
	// request, bumped by promotion. The role is DYNAMIC — a follower becomes
	// leader via Promote, and a deposed leader demotes when a peer proves a
	// higher epoch — so it lives in atomics, not in cfg.
	epoch        atomic.Uint64
	followerFlag atomic.Bool             // true while following (refusing writes)
	curLeader    atomic.Pointer[string]  // current leader base URL ("" when unknown / self)
	maxPeerEpoch atomic.Uint64           // highest epoch any peer has advertised
	promoteMu    sync.Mutex              // serializes Promote/demote transitions
	dedup        *dedupTable             // exactly-once ingest session table
	marks        *followerMarks          // follower tail positions (sync acks)

	// Replication (DESIGN.md §13). Leader side: src serves the WAL.
	// Follower side: tail streams the leader's WAL into the apply path;
	// leaderNext/replConnected/lastSyncNano track lag and staleness.
	src           *replication.Source
	tail          *replication.Tailer
	tailStop      func()        // cancels the tail loop (follower Drain)
	tailDone      chan struct{} // closed when the tail goroutine exits
	leaderNext    atomic.Uint64 // leader's next WAL index, as last observed
	replConnected atomic.Bool
	lastSyncNano  atomic.Int64 // wall clock of the last confirmed caught-up poll

	// hub fans per-commit answer deltas out to /v1/watch subscribers
	// (DESIGN.md §15). Publications happen on the commit path AFTER the
	// pool snapshot and s.applied are updated, so a subscriber that re-reads
	// /v1/answers on a resync marker can never miss a published change.
	hub *watch.Hub

	// ansCache memoizes the encoded /v1/answers full-listing body for the
	// current (snapshot, position, quiesced) triple; any commit, query
	// registration or re-bootstrap changes the triple and so invalidates it.
	ansCache atomic.Pointer[ansCacheEntry]

	ckptMu sync.Mutex // serializes periodic and drain checkpoints
	mux    *http.ServeMux
}

// ansCacheEntry is one memoized /v1/answers body, keyed by the exact state
// it was rendered from. The snapshot pointer (not just the position) is part
// of the key: a re-bootstrap can rebuild answers at an already-seen position.
type ansCacheEntry struct {
	snap     *Snapshot
	pos      uint64
	quiesced bool
	body     []byte
}

// srvHandles pre-resolves the serving hot-path counters (DESIGN.md §9):
// accepted/applied move per update, the rest per batch or per request.
type srvHandles struct {
	accepted, shed, rejected    stats.Handle
	batches, updates            stats.Handle
	cutSize, cutTimer, cutDrain stats.Handle
	registered, degraded, ckpts stats.Handle
	inflightShed, timeouts      stats.Handle
	bodyTooLarge                stats.Handle
	dropBatches, dropUpdates    stats.Handle
	walSegmentsDeleted          stats.Handle
	staleRejected               stats.Handle
	fastGroups, fastUpdates     stats.Handle
	fastDropped                 stats.Handle
	binConns, binFrames         stats.Handle
	binBadFrames                stats.Handle
	watchConns, watchRejected   stats.Handle
	ansCacheHits                stats.Handle
	ansCacheMisses              stats.Handle
	dedupHits                   stats.Handle
	syncAckTimeouts             stats.Handle
	promotions, demotions       stats.Handle
}

// New builds a server over an initial topology. The server takes its own
// clones of g; the caller keeps ownership. With cfg.WALPath set, a fresh
// WAL is created (truncating any previous one — use Restore to continue a
// previous stream).
func New(g *graph.Dynamic, a algo.Algorithm, cfg Config) (*Server, error) {
	return build(g, a, nil, 0, cfg, false, 0)
}

// Restore rebuilds a server from the durable artefacts of a previous run —
// the drain (or periodic) checkpoint plus the WAL suffix it does not cover
// — via the PR 1 recovery path. init supplies the initial topology when no
// usable checkpoint exists (nil init makes a missing checkpoint fatal).
// Registered queries come back armed; their answers recompute from the
// restored topology and are identical to the pre-restart ones.
func Restore(a algo.Algorithm, cfg Config, init func() (*graph.Dynamic, error)) (*Server, error) {
	cfg = cfg.WithDefaults()
	var (
		g        *graph.Dynamic
		queries  []core.Query
		sessions []dedupSession
		through  uint64
		epoch    uint64
	)
	if cfg.CheckpointPath != "" {
		covered, ckptEpoch, payload, err := resilience.ReadCheckpointMeta(cfg.CheckpointPath)
		switch {
		case err == nil:
			if g, queries, sessions, err = decodeState(payload); err != nil {
				return nil, err
			}
			through = covered
			epoch = ckptEpoch
		case os.IsNotExist(err) && init != nil:
			// Fall through to init below.
		default:
			if init == nil {
				return nil, fmt.Errorf("server: restore: %w", err)
			}
		}
	}
	if g == nil {
		if init == nil {
			return nil, errors.New("server: restore: no usable checkpoint and no init topology")
		}
		var err error
		if g, err = init(); err != nil {
			return nil, err
		}
		through = 0
	}
	// Replay the WAL suffix the checkpoint does not cover, exactly like
	// resilience.Recover: indices below `through` are already inside the
	// restored topology.
	var replay []resilience.Record
	if cfg.WALPath != "" {
		recs, err := resilience.ReplaySegmentedFS(cfg.FS, cfg.WALPath)
		if err != nil {
			return nil, fmt.Errorf("server: restore: %w", err)
		}
		for _, rec := range recs {
			if rec.Index < through {
				continue
			}
			if rec.Index != through+uint64(len(replay)) {
				return nil, fmt.Errorf("server: restore: WAL gap (record %d, expected %d)",
					rec.Index, through+uint64(len(replay)))
			}
			replay = append(replay, rec)
		}
	}
	s, err := build(g, a, queries, through, cfg, true, epoch)
	if err != nil {
		return nil, err
	}
	// The exactly-once session table rebuilds exactly as it was: checkpoint
	// sessions first, then the replayed records' session tags in log order.
	s.dedup.load(sessions)
	// WAL-replayed batches were already sanitized by the pre-crash run;
	// they go straight through the shadow and the pool.
	sh := s.shadow.Load()
	for _, rec := range replay {
		sh.Apply(rec.Batch)
		// Replay precedes serving — no watch subscriber can exist yet, so
		// the changed set is discarded.
		tEng := time.Now()
		if _, perr := s.pool.ApplyBatch(rec.Batch); perr != nil {
			s.setLastErr(perr)
		}
		s.applyLat.record(len(rec.Batch), time.Since(tEng))
		s.applied.Add(1)
		s.dedup.advance(rec.SID, rec.Seq)
	}
	s.edges.Store(int64(sh.NumEdges()))
	return s, nil
}

// build assembles the server around an already-positioned topology.
// resumeWAL keeps an existing WAL and appends to it (the Restore path —
// truncating would discard the very records just replayed); a fresh start
// truncates. bootEpoch seeds the leadership epoch (checkpoint stamp on
// restore, the leader's epoch on follower bootstrap); an existing WAL's
// segment-header epoch wins when higher.
func build(g *graph.Dynamic, a algo.Algorithm, queries []core.Query, through uint64, cfg Config, resumeWAL bool, bootEpoch uint64) (*Server, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cnt := stats.NewCounters()
	var poolOpts []core.MultiOption
	if cfg.PropagateWorkers >= 2 {
		poolOpts = append(poolOpts,
			core.WithPropagateWorkers(cfg.PropagateWorkers),
			core.WithParallelFrontierMin(cfg.ParallelFrontierMin))
	}
	s := &Server{
		cfg:  cfg,
		a:    a,
		pool: NewQueryPool(g, a, cfg.Shards, cfg.Workers, cfg.Store, !cfg.DisableChangeSkip, poolOpts...),
		san:  resilience.NewSanitizer(cfg.Policy, cnt),
		cnt:  cnt,
		hub:  watch.New(),
		h: srvHandles{
			accepted:           cnt.Handle(CntUpdatesAccepted),
			shed:               cnt.Handle(CntUpdatesShed),
			rejected:           cnt.Handle(CntPostsRejected),
			batches:            cnt.Handle(CntBatchesApplied),
			updates:            cnt.Handle(CntUpdatesApplied),
			cutSize:            cnt.Handle(CntCutSize),
			cutTimer:           cnt.Handle(CntCutTimer),
			cutDrain:           cnt.Handle(CntCutDrain),
			registered:         cnt.Handle(CntQueriesRegistered),
			degraded:           cnt.Handle(CntBatchDegraded),
			ckpts:              cnt.Handle(CntCheckpoints),
			inflightShed:       cnt.Handle(CntInflightShed),
			timeouts:           cnt.Handle(CntRequestTimeouts),
			bodyTooLarge:       cnt.Handle(CntBodyTooLarge),
			dropBatches:        cnt.Handle(CntBatchesDroppedDegraded),
			dropUpdates:        cnt.Handle(CntUpdatesDroppedDegraded),
			walSegmentsDeleted: cnt.Handle(CntWALSegmentsDeleted),
			staleRejected:      cnt.Handle(CntStaleReadsRejected),
			fastGroups:         cnt.Handle(CntFastGroups),
			fastUpdates:        cnt.Handle(CntFastUpdates),
			fastDropped:        cnt.Handle(CntFastDropped),
			binConns:           cnt.Handle(CntBinConns),
			binFrames:          cnt.Handle(CntBinFrames),
			binBadFrames:       cnt.Handle(CntBinBadFrames),
			watchConns:         cnt.Handle(CntWatchConns),
			watchRejected:      cnt.Handle(CntWatchRejected),
			ansCacheHits:       cnt.Handle(CntAnswersCacheHits),
			ansCacheMisses:     cnt.Handle(CntAnswersCacheMisses),
			dedupHits:          cnt.Handle(CntDedupHits),
			syncAckTimeouts:    cnt.Handle(CntSyncAckTimeouts),
			promotions:         cnt.Handle(CntPromotions),
			demotions:          cnt.Handle(CntDemotions),
		},
		gate: make(inflightGate, cfg.MaxInFlight),
	}
	s.shadow.Store(g.Clone())
	s.applied.Store(through)
	s.edges.Store(int64(g.NumEdges()))
	s.dedup = newDedupTable(cfg.DedupSessions)
	s.marks = newFollowerMarks()
	s.followerFlag.Store(cfg.FollowURL != "")
	s.setLeader(cfg.FollowURL)
	s.epoch.Store(bootEpoch)
	for _, q := range queries {
		s.pool.Register(q)
		s.h.registered.Inc()
	}
	if cfg.WALPath != "" {
		opts := resilience.SegWALOptions{
			SegmentBytes: cfg.WALSegmentBytes,
			Retain:       cfg.WALRetain,
			FS:           cfg.FS,
			Epoch:        bootEpoch,
			StartIndex:   through,
		}
		var (
			wal *resilience.SegmentedWAL
			err error
		)
		if resumeWAL {
			wal, err = resilience.OpenSegmentedWAL(cfg.WALPath, opts)
		} else {
			wal, err = resilience.CreateSegmentedWAL(cfg.WALPath, opts)
		}
		if err != nil {
			return nil, err
		}
		s.wal = wal
		// A resumed log's active-segment epoch is authoritative when it is
		// ahead of the checkpoint's stamp (epoch bumped after the last
		// checkpoint).
		if we := wal.Epoch(); we > s.epoch.Load() {
			s.epoch.Store(we)
		}
	}
	s.brk = newDiskBreaker(s.probeDisk, cfg.DiskRetryBase, cfg.DiskRetryMax)
	s.bat = NewBatcher(cfg.BatchMaxSize, cfg.BatchMaxWait, cfg.QueueCapacity, cfg.OnFull, s.applyBatch)
	s.fp = newFastPath(s)
	s.routes()
	return s, nil
}

// probeDisk is the breaker's health check: verify the durability path can
// take writes again. With a WAL, repairing and fsyncing the active segment
// is the authoritative probe; otherwise a scratch file next to the
// checkpoint stands in.
func (s *Server) probeDisk() error {
	if s.wal != nil {
		return s.wal.Probe()
	}
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	p := s.cfg.CheckpointPath + ".probe"
	f, err := s.cfg.FS.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("probe")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.cfg.FS.Remove(p)
}

// applyBatch is the batch-path pipeline stage: sanitize against the shadow,
// append to the WAL, mutate the shadow, fan out to the pool, and checkpoint
// on schedule. It runs on the batcher's applier goroutine, holding the
// commit lock against the fast path's commit loop.
func (s *Server) applyBatch(batch []graph.Update, reason CutReason) {
	switch reason {
	case CutSize:
		s.h.cutSize.Inc()
	case CutTimer:
		s.h.cutTimer.Inc()
	case CutDrain:
		s.h.cutDrain.Inc()
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	// A node deposed while this batch sat in the queue must not commit it:
	// followers take writes only from the replication tail.
	if s.isFollower() {
		s.h.dropBatches.Inc()
		s.h.dropUpdates.Add(int64(len(batch)))
		return
	}
	sh := s.shadow.Load()
	clean, _, err := s.san.Sanitize(sh, batch)
	if err != nil {
		// Reject/strict policy refused the whole batch: nothing reaches the
		// engines; the rejection is visible via metrics and lastError.
		s.setLastErr(err)
		return
	}
	if len(clean) == 0 {
		return
	}
	// Degraded mode (DESIGN.md §12.2): a batch that cannot be made durable
	// is never applied. Applying it would desynchronize the served answers
	// from the durable prefix — after a crash, recovery would replay less
	// than was served. The batch is dropped (counted), the breaker opens,
	// and /v1/updates rejects with 503 until a background probe heals.
	if s.brk.Open() {
		s.h.dropBatches.Inc()
		s.h.dropUpdates.Add(int64(len(clean)))
		return
	}
	if s.wal != nil {
		if _, werr := s.wal.Append(clean); werr != nil {
			s.brk.Trip(werr)
			s.setLastErr(fmt.Errorf("server: wal append failed (batch dropped, degraded): %w", werr))
			s.h.dropBatches.Inc()
			s.h.dropUpdates.Add(int64(len(clean)))
			return
		}
	}
	sh.Apply(clean)
	tEng := time.Now()
	changed, perr := s.pool.ApplyBatch(clean)
	s.applyLat.record(len(clean), time.Since(tEng))
	if perr != nil {
		s.h.degraded.Inc()
		s.setLastErr(perr)
	}
	applied := s.applied.Add(1)
	s.publishWatch(applied, changed)
	s.edges.Store(int64(sh.NumEdges()))
	s.h.batches.Inc()
	s.h.updates.Add(int64(len(clean)))
	if s.cfg.CheckpointEvery > 0 && applied%uint64(s.cfg.CheckpointEvery) == 0 {
		if cerr := s.writeCheckpoint(); cerr != nil {
			s.setLastErr(cerr)
		}
	}
}

// writeCheckpoint persists the shadow topology + query set + exactly-once
// session table through the PR 1 atomic checkpoint envelope, positioned at
// the applied batch count and stamped with the leadership epoch.
func (s *Server) writeCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	through := s.applied.Load()
	payload := encodeState(s.shadow.Load(), s.pool.QueriesSnapshot(), s.dedup.snapshot())
	if err := resilience.WriteCheckpointMetaFS(s.cfg.FS, s.cfg.CheckpointPath, through, s.Epoch(), payload); err != nil {
		s.brk.Trip(err)
		return fmt.Errorf("server: %w", err)
	}
	s.h.ckpts.Inc()
	// Checkpoint-coordinated retention: the checkpoint now covers every
	// batch with index < through, so WAL segments wholly below it are dead
	// weight — delete them (modulo the WALRetain floor).
	if s.wal != nil {
		removed, rerr := s.wal.TruncateThrough(through)
		s.h.walSegmentsDeleted.Add(int64(removed))
		if rerr != nil {
			// Retention failure doesn't invalidate the checkpoint; surface it
			// without degrading.
			s.setLastErr(fmt.Errorf("server: wal retention: %w", rerr))
		}
	}
	return nil
}

// Drain is the SIGTERM path: stop admitting updates and queries, flush the
// remaining ingestion window through the engines, fsync-close the WAL, and
// write the final checkpoint. After Drain returns, published answers cover
// every accepted update and a Restore from the artefacts reproduces them
// exactly. Idempotent.
func (s *Server) Drain() error {
	s.draining.Store(true)
	// Follower: stop tailing before flushing, so the single writer is gone
	// and the final published snapshot is stable.
	if s.tailStop != nil {
		s.tailStop()
		<-s.tailDone
	}
	// Flush the fast path first (it refuses new frames, commits what was
	// admitted, then closes its connections) so the final checkpoint covers
	// both write pipelines.
	s.fp.shutdown()
	s.bat.Drain()
	// Both write pipelines are flushed — every commit has been published to
	// the hub. Closing it ends each /v1/watch stream after its queued
	// deltas drain, so subscribers observe the complete stream.
	s.hub.Close()
	s.brk.Stop() // no more disk probes; a closed WAL must stay closed
	var err error
	if werr := s.writeCheckpoint(); werr != nil {
		err = joinNonNil(err, werr)
	}
	if s.wal != nil {
		// Close is idempotent and flips the WAL's closed flag, so a straggling
		// breaker probe cannot resurrect a segment; s.wal itself stays set for
		// metrics readers (Segments/Bytes remain valid after close).
		if cerr := s.wal.Close(); cerr != nil {
			err = joinNonNil(err, fmt.Errorf("server: wal close: %w", cerr))
		}
	}
	return err
}

// CloseWatchers ends every /v1/watch subscription (each stream delivers its
// queued deltas, then a bye event) and refuses new ones. The daemon calls it
// from http.Server.RegisterOnShutdown: watch streams are long-lived
// connections that would otherwise hold a graceful HTTP shutdown open until
// its deadline. Idempotent; Drain also closes the hub for non-HTTP embeds.
func (s *Server) CloseWatchers() { s.hub.Close() }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Quiesced reports that every accepted update is reflected in the published
// answers (empty queue, no batch in flight, no fast-path frame pending).
func (s *Server) Quiesced() bool { return s.bat.Quiesced() && s.fp.quiesced() }

// Pool exposes the query pool (read-side: snapshots, counters).
func (s *Server) Pool() *QueryPool { return s.pool }

// Counters exposes the server's own counters (ingest, batching, lifecycle).
func (s *Server) Counters() *stats.Counters { return s.cnt }

// Applied returns the number of sanitized batches applied since the stream
// began (including batches restored from checkpoint/WAL).
func (s *Server) Applied() uint64 { return s.applied.Load() }

func (s *Server) setLastErr(err error) {
	msg := err.Error()
	s.lastErr.Store(&msg)
}

// LastError returns the most recent degradation message ("" when clean).
func (s *Server) LastError() string {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// ---- HTTP API ----

// Handler returns the server's HTTP handler. Per-endpoint deadlines and the
// in-flight gate are wired inside routes; the mux is served directly.
func (s *Server) Handler() http.Handler {
	return s.mux
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	d := s.cfg.RequestTimeout
	v1 := func(h http.HandlerFunc) http.Handler {
		return s.withGate(s.withDeadline(d, h))
	}
	s.mux.Handle("POST /v1/updates", v1(s.handleUpdates))
	s.mux.Handle("POST /v1/query", v1(s.handleQuery))
	s.mux.Handle("GET /v1/answers", v1(s.handleAnswers))
	// /v1/watch streams (SSE) or parks (long-poll), so like the replication
	// tail it must not run under the buffering TimeoutHandler or occupy an
	// in-flight-gate slot for its whole lifetime; it bounds itself via the
	// MaxWatchers cap, per-subscriber queues, and the request context.
	s.mux.Handle("GET /v1/watch", http.HandlerFunc(s.handleWatch))
	// Observability endpoints bypass the gate: a saturated or degraded
	// server must stay observable. They still run under the deadline.
	s.mux.Handle("GET /healthz", s.withDeadline(d, http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /metrics", s.withDeadline(d, http.HandlerFunc(s.handleMetrics)))
	// Promotion is an operator/watchdog action, not a data-plane request: it
	// bypasses the in-flight gate so a saturated follower can still fail
	// over, but keeps the deadline.
	s.mux.Handle("POST /v1/admin/promote", s.withDeadline(d, http.HandlerFunc(s.handlePromote)))
	// Replication source (nodes with a WAL: leaders, and promotable
	// followers — whose log a sibling tails after THEY promote). Segments/
	// checkpoint are ordinary bounded requests; the tail endpoint long-polls
	// and streams, so it must NOT run under the buffering TimeoutHandler —
	// it bounds itself via the long-poll deadline and the request context.
	if s.wal != nil {
		s.src = &replication.Source{
			WAL:            s.wal,
			CheckpointPath: s.cfg.CheckpointPath,
			FS:             s.cfg.FS,
			LongPoll:       s.cfg.ReplLongPoll,
			Draining:       s.Draining,
			Epoch:          s.Epoch,
			OnPeerEpoch:    s.onPeerEpoch,
			OnTailFrom:     s.marks.observe,
		}
		s.mux.Handle("GET "+replication.PathSegments, s.withDeadline(d, http.HandlerFunc(s.src.ServeSegments)))
		s.mux.Handle("GET "+replication.PathCheckpoint, s.withDeadline(d, http.HandlerFunc(s.src.ServeCheckpoint)))
		s.mux.Handle("GET "+replication.PathTail, http.HandlerFunc(s.src.ServeTail))
	}
}

// ---- Replication role, lag, and staleness (DESIGN.md §13) ----

// isFollower reports whether this server currently refuses writes and (when
// wired) replicates from a leader. Unlike cfg.FollowURL this is DYNAMIC:
// Promote clears it, and a fencing peer epoch sets it (demotion).
func (s *Server) isFollower() bool { return s.followerFlag.Load() }

// Role returns "leader" or "follower" for headers and metrics.
func (s *Server) Role() string {
	if s.isFollower() {
		return "follower"
	}
	return "leader"
}

// ReplLagBatches returns how many leader batches this follower has not yet
// applied (0 on leaders and on caught-up followers).
func (s *Server) ReplLagBatches() uint64 {
	next := s.leaderNext.Load()
	applied := s.applied.Load()
	if next <= applied {
		return 0
	}
	return next - applied
}

// Staleness returns how far behind the leader this follower's answers may
// be: zero while connected and caught up, otherwise the wall-clock time
// since the follower last confirmed it was caught up. Leaders are never
// stale.
func (s *Server) Staleness() time.Duration {
	if !s.isFollower() {
		return 0
	}
	if s.replConnected.Load() && s.ReplLagBatches() == 0 {
		return 0
	}
	last := s.lastSyncNano.Load()
	if last == 0 {
		return 0 // not yet bootstrapped; StartFollower stamps this before serving
	}
	return time.Since(time.Unix(0, last))
}

// replDegraded reports whether the follower has exceeded its configured
// staleness budget (the PR 5 degraded-mode pattern applied to replication:
// keep serving, but make the degradation loudly observable).
func (s *Server) replDegraded() bool {
	return s.isFollower() && s.cfg.MaxStaleness > 0 && s.Staleness() > s.cfg.MaxStaleness
}

// stampReplHeaders marks every read response with the node's role and
// epoch and, on followers, the staleness bound clients reason about.
func (s *Server) stampReplHeaders(w http.ResponseWriter) {
	w.Header().Set(replication.HeaderRole, s.Role())
	w.Header().Set(replication.HeaderEpoch, strconv.FormatUint(s.Epoch(), 10))
	if s.isFollower() {
		w.Header().Set(replication.HeaderStaleness,
			strconv.FormatFloat(s.Staleness().Seconds(), 'f', 3, 64))
	}
}

// rejectIfTooStale enforces a client's X-CISGraph-Max-Staleness bound
// (duration like "2s", or bare seconds). True means the request was
// answered with 503 + Retry-After and the caller must return.
func (s *Server) rejectIfTooStale(w http.ResponseWriter, r *http.Request) bool {
	bound := r.Header.Get(replication.HeaderMaxStaleness)
	if bound == "" || !s.isFollower() {
		return false
	}
	limit, err := time.ParseDuration(bound)
	if err != nil {
		if secs, ferr := strconv.ParseFloat(bound, 64); ferr == nil {
			limit = time.Duration(secs * float64(time.Second))
		} else {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("bad %s %q (want a duration like 2s or seconds)", replication.HeaderMaxStaleness, bound))
			return true
		}
	}
	if stale := s.Staleness(); stale > limit {
		s.h.staleRejected.Inc()
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("replica staleness %.3fs exceeds requested bound %s", stale.Seconds(), bound))
		return true
	}
	return false
}

// WireValue carries an algo.Value through JSON. Pairwise algorithms use
// ±Inf as the "unreached" answer, which bare JSON numbers cannot express;
// those (and NaN) travel as the strings "+Inf", "-Inf" and "NaN".
type WireValue float64

// MarshalJSON implements json.Marshaler.
func (v WireValue) MarshalJSON() ([]byte, error) {
	f := float64(v)
	switch {
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *WireValue) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+Inf"`:
		*v = WireValue(math.Inf(1))
		return nil
	case `"-Inf"`:
		*v = WireValue(math.Inf(-1))
		return nil
	case `"NaN"`:
		*v = WireValue(math.NaN())
		return nil
	}
	return json.Unmarshal(data, (*float64)(v))
}

// updateJSON is the wire form of one update.
type updateJSON struct {
	Op   string  `json:"op"` // "add" or "del"
	From uint32  `json:"from"`
	To   uint32  `json:"to"`
	W    float64 `json:"w"`
}

type updatesRequest struct {
	Updates []updateJSON `json:"updates"`
}

type updatesResponse struct {
	Accepted int `json:"accepted"`
	Shed     int `json:"shed,omitempty"`
	Pending  int `json:"pending"`
}

// Ingest scratch pools: decode buffers and the converted batch slice are the
// two per-request allocations that dominate ServerIngest profiles (the
// decoded slice alone is ~24 B/update). Offer copies the batch into the
// queue, so both are safe to recycle the moment the handler returns.
var (
	updatesReqPool  = sync.Pool{New: func() any { return new(updatesRequest) }}
	ingestBatchPool = sync.Pool{New: func() any { return new([]graph.Update) }}
)

// jsonBytesPerUpdate is a conservative wire-size estimate for one update
// object ({"op":"add","from":...}), used to pre-size the decode buffer from
// Content-Length so slice growth doesn't reallocate mid-decode.
const jsonBytesPerUpdate = 40

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		// Read replica (or deposed leader): the write path lives on the
		// leader. 421 tells the client it addressed the wrong node; Location
		// points at the current leader when one is known — after a failover
		// the tailer's 421/epoch handoff keeps this fresh.
		s.h.rejected.Inc()
		s.stampReplHeaders(w)
		leader := s.LeaderURL()
		if leader != "" {
			w.Header().Set("Location", leader+"/v1/updates")
			httpError(w, http.StatusMisdirectedRequest,
				"read-only follower; send writes to the leader at "+leader)
			return
		}
		httpError(w, http.StatusMisdirectedRequest,
			"read-only follower; leader currently unknown (probe peers)")
		return
	}
	if s.brk.Open() {
		// Degraded mode: the durable-write path is failing, so new updates
		// are refused at the door while reads keep serving. Retry-After
		// matches the probe cadence ceiling.
		s.h.rejected.Inc()
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable,
			"degraded: durable writes failing ("+s.brk.Reason()+"), retry later")
		return
	}
	s.limitBody(w, r)
	req := updatesReqPool.Get().(*updatesRequest)
	defer func() {
		req.Updates = req.Updates[:0]
		updatesReqPool.Put(req)
	}()
	req.Updates = req.Updates[:0]
	if n := r.ContentLength; n > 0 {
		if est := int(n / jsonBytesPerUpdate); cap(req.Updates) < est {
			req.Updates = make([]updateJSON, 0, est)
		}
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.h.bodyTooLarge.Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body over %d bytes", maxErr.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	bp := ingestBatchPool.Get().(*[]graph.Update)
	batch := (*bp)[:0]
	defer func() {
		*bp = batch[:0]
		ingestBatchPool.Put(bp)
	}()
	for i, u := range req.Updates {
		switch u.Op {
		case "add":
			batch = append(batch, graph.Add(u.From, u.To, u.W))
		case "del":
			batch = append(batch, graph.Del(u.From, u.To, u.W))
		default:
			httpError(w, http.StatusBadRequest, fmt.Sprintf("update %d: unknown op %q (want add or del)", i, u.Op))
			return
		}
	}
	// Offer copies batch into the queue; the slice goes back to the pool.
	accepted, shed, err := s.bat.Offer(batch)
	switch {
	case errors.Is(err, ErrDraining):
		s.h.rejected.Inc()
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		s.h.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	s.h.accepted.Add(int64(accepted))
	s.h.shed.Add(int64(shed))
	writeJSON(w, http.StatusAccepted, updatesResponse{
		Accepted: accepted,
		Shed:     shed,
		Pending:  s.bat.Pending(),
	})
}

type queryRequest struct {
	S uint32 `json:"s"`
	D uint32 `json:"d"`
}

type queryResponse struct {
	ID      int       `json:"id"`
	S       uint32    `json:"s"`
	D       uint32    `json:"d"`
	Answer  WireValue `json:"answer"`
	Batches uint64    `json:"batches"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining, not accepting queries")
		return
	}
	s.stampReplHeaders(w)
	if s.rejectIfTooStale(w, r) {
		return
	}
	s.limitBody(w, r)
	var req queryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.h.bodyTooLarge.Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body over %d bytes", maxErr.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	n := uint32(s.shadowVertices())
	if req.S >= n || req.D >= n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("query %d->%d out of range N=%d", req.S, req.D, n))
		return
	}
	if req.S == req.D {
		httpError(w, http.StatusBadRequest, "query source equals destination")
		return
	}
	if s.pool.NumQueries() >= s.cfg.MaxQueries {
		httpError(w, http.StatusTooManyRequests, fmt.Sprintf("query limit %d reached", s.cfg.MaxQueries))
		return
	}
	id, ans := s.pool.Register(core.Query{S: req.S, D: req.D})
	s.h.registered.Inc()
	writeJSON(w, http.StatusOK, queryResponse{
		ID: id, S: req.S, D: req.D, Answer: WireValue(ans), Batches: s.pool.Batches(),
	})
}

type answerJSON struct {
	ID    int       `json:"id"`
	S     uint32    `json:"s"`
	D     uint32    `json:"d"`
	Value WireValue `json:"value"`
}

type answersResponse struct {
	Batches  uint64       `json:"batches"`
	Quiesced bool         `json:"quiesced"`
	Answers  []answerJSON `json:"answers"`
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	s.stampReplHeaders(w)
	if s.rejectIfTooStale(w, r) {
		return
	}
	snap := s.pool.Answers()
	// Batches is the global stream position (s.applied), not the pool-local
	// apply count: a follower's pool starts fresh at its bootstrap
	// checkpoint, but clients comparing replicas need one coordinate system.
	resp := answersResponse{Batches: s.applied.Load(), Quiesced: s.Quiesced()}
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 || id >= len(snap.Values) {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown query id %q", idStr))
			return
		}
		q := snap.Queries[id]
		resp.Answers = []answerJSON{{ID: id, S: q.S, D: q.D, Value: WireValue(snap.Values[id])}}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Full listing: serve the memoized body when nothing that feeds it has
	// moved since the last render. Between commits every poller hits the
	// cache, so polling cost no longer scales with Q × poll rate; any
	// commit, registration or re-bootstrap changes the key.
	if e := s.ansCache.Load(); e != nil &&
		e.snap == snap && e.pos == resp.Batches && e.quiesced == resp.Quiesced {
		s.h.ansCacheHits.Inc()
		writeJSONBody(w, http.StatusOK, e.body)
		return
	}
	s.h.ansCacheMisses.Inc()
	resp.Answers = make([]answerJSON, len(snap.Values))
	for i, q := range snap.Queries {
		resp.Answers[i] = answerJSON{ID: i, S: q.S, D: q.D, Value: WireValue(snap.Values[i])}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	s.ansCache.Store(&ansCacheEntry{
		snap: snap, pos: resp.Batches, quiesced: resp.Quiesced, body: body,
	})
	writeJSONBody(w, http.StatusOK, body)
}

type healthzResponse struct {
	Status         string      `json:"status"` // "ok", "degraded" or "draining"
	DegradedReason string      `json:"degraded_reason,omitempty"`
	Role           string      `json:"role"`
	Epoch          uint64      `json:"epoch"`
	Leader         string      `json:"leader,omitempty"`
	Batches        uint64      `json:"batches"`
	Pending        int         `json:"pending"`
	Quiesced       bool        `json:"quiesced"`
	Queries        int         `json:"queries"`
	Edges          int64       `json:"edges"`
	Algorithm      string      `json:"algorithm"`
	Shards         int         `json:"shards"`
	Store          string      `json:"store"`
	StateMB        float64     `json:"state_mb"`
	WALSegments    int         `json:"wal_segments,omitempty"`
	WALBytes       int64       `json:"wal_bytes,omitempty"`
	Repl           *replHealth `json:"repl,omitempty"`
	// ApplyLatency is the engine-side apply-latency distribution split by
	// batch-size class (applylat.go), in ascending size order.
	ApplyLatency []ApplyLatBucket `json:"apply_latency,omitempty"`
	LastError    string           `json:"last_error,omitempty"`
}

// replHealth is the follower's replication block in /healthz.
type replHealth struct {
	LagBatches   uint64  `json:"lag_batches"`
	StalenessS   float64 `json:"staleness_s"`
	Connected    bool    `json:"connected"`
	Reconnects   uint64  `json:"reconnects"`
	Rebootstraps uint64  `json:"rebootstraps"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:       "ok",
		Role:         s.Role(),
		Epoch:        s.Epoch(),
		Leader:       s.LeaderURL(),
		Batches:      s.applied.Load(),
		Pending:      s.bat.Pending(),
		Quiesced:     s.Quiesced(),
		Queries:      s.pool.NumQueries(),
		Edges:        s.edges.Load(),
		Algorithm:    s.a.Name(),
		Shards:       s.pool.NumShards(),
		Store:        s.pool.Store().String(),
		StateMB:      float64(s.pool.StateBytes()) / (1 << 20),
		ApplyLatency: s.applyLat.report(),
		LastError:    s.LastError(),
	}
	switch {
	case s.draining.Load():
		resp.Status = "draining"
	case s.brk.Open():
		resp.Status = "degraded"
		resp.DegradedReason = s.brk.Reason()
	case s.replDegraded():
		resp.Status = "degraded"
		resp.DegradedReason = fmt.Sprintf("replication staleness %.3fs exceeds max %s (lag %d batches)",
			s.Staleness().Seconds(), s.cfg.MaxStaleness, s.ReplLagBatches())
	}
	if s.wal != nil {
		resp.WALSegments = s.wal.Segments()
		resp.WALBytes = s.wal.Bytes()
	}
	if s.isFollower() && s.tail != nil {
		resp.Repl = &replHealth{
			LagBatches:   s.ReplLagBatches(),
			StalenessS:   s.Staleness().Seconds(),
			Connected:    s.replConnected.Load(),
			Reconnects:   s.tail.Reconnects.Load(),
			Rebootstraps: s.tail.Rebootstraps.Load(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders every counter — the server's own stats.Handle cells
// plus the merged shard-engine counters — in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP cisgraph_counter Cumulative event counters (server + merged engines).\n")
	fmt.Fprintf(w, "# TYPE cisgraph_counter counter\n")
	writeCounterFamily(w, "server", s.cnt.Snapshot())
	writeCounterFamily(w, "engine", s.pool.Counters().Snapshot())
	fmt.Fprintf(w, "# HELP cisgraph_ingest_pending Updates queued but not yet applied.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_ingest_pending gauge\n")
	fmt.Fprintf(w, "cisgraph_ingest_pending %d\n", s.bat.Pending())
	fmt.Fprintf(w, "# HELP cisgraph_batches_applied Sanitized batches applied since stream start.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_batches_applied counter\n")
	fmt.Fprintf(w, "cisgraph_batches_applied %d\n", s.applied.Load())
	fmt.Fprintf(w, "# HELP cisgraph_edges Current edge count of the authoritative topology.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_edges gauge\n")
	fmt.Fprintf(w, "cisgraph_edges %d\n", s.edges.Load())
	fmt.Fprintf(w, "# HELP cisgraph_queries Registered pairwise queries.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_queries gauge\n")
	fmt.Fprintf(w, "cisgraph_queries %d\n", s.pool.NumQueries())
	fmt.Fprintf(w, "# HELP cisgraph_state_bytes Resident per-query state across all shards (store payloads plus shared baselines).\n")
	fmt.Fprintf(w, "# TYPE cisgraph_state_bytes gauge\n")
	fmt.Fprintf(w, "cisgraph_state_bytes{store=%q} %d\n", s.pool.Store(), s.pool.StateBytes())
	if s.wal != nil {
		fmt.Fprintf(w, "# HELP cisgraph_wal_segments Live WAL segment files (sealed + active).\n")
		fmt.Fprintf(w, "# TYPE cisgraph_wal_segments gauge\n")
		fmt.Fprintf(w, "cisgraph_wal_segments %d\n", s.wal.Segments())
		fmt.Fprintf(w, "# HELP cisgraph_wal_bytes Total bytes across live WAL segments.\n")
		fmt.Fprintf(w, "# TYPE cisgraph_wal_bytes gauge\n")
		fmt.Fprintf(w, "cisgraph_wal_bytes %d\n", s.wal.Bytes())
	}
	fmt.Fprintf(w, "# HELP cisgraph_watch_subscribers Active /v1/watch subscriptions.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_watch_subscribers gauge\n")
	fmt.Fprintf(w, "cisgraph_watch_subscribers %d\n", s.hub.Subscribers())
	fmt.Fprintf(w, "# HELP cisgraph_watch_deltas Delta messages enqueued to watch subscribers.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_watch_deltas counter\n")
	fmt.Fprintf(w, "cisgraph_watch_deltas %d\n", s.hub.Delivered())
	fmt.Fprintf(w, "# HELP cisgraph_watch_drops Watch messages dropped on slow consumers.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_watch_drops counter\n")
	fmt.Fprintf(w, "cisgraph_watch_drops %d\n", s.hub.Dropped())
	fmt.Fprintf(w, "# HELP cisgraph_watch_resyncs Resync markers enqueued to watch subscribers.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_watch_resyncs counter\n")
	fmt.Fprintf(w, "cisgraph_watch_resyncs %d\n", s.hub.Resynced())
	fmt.Fprintf(w, "# HELP cisgraph_role 1 for the node's replication role.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_role gauge\n")
	fmt.Fprintf(w, "cisgraph_role{role=%q} 1\n", s.Role())
	fmt.Fprintf(w, "# HELP cisgraph_epoch Leadership epoch (fencing token); bumped by every promotion.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_epoch gauge\n")
	fmt.Fprintf(w, "cisgraph_epoch %d\n", s.Epoch())
	fmt.Fprintf(w, "# HELP cisgraph_dedup_sessions Live exactly-once ingest sessions in the dedup table.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_dedup_sessions gauge\n")
	fmt.Fprintf(w, "cisgraph_dedup_sessions %d\n", s.dedup.size())
	if s.isFollower() {
		connected := 0
		if s.replConnected.Load() {
			connected = 1
		}
		fmt.Fprintf(w, "# HELP cisgraph_repl_lag_batches Leader batches not yet applied by this follower.\n")
		fmt.Fprintf(w, "# TYPE cisgraph_repl_lag_batches gauge\n")
		fmt.Fprintf(w, "cisgraph_repl_lag_batches %d\n", s.ReplLagBatches())
		fmt.Fprintf(w, "# HELP cisgraph_repl_staleness_seconds Time since this follower last confirmed it was caught up.\n")
		fmt.Fprintf(w, "# TYPE cisgraph_repl_staleness_seconds gauge\n")
		fmt.Fprintf(w, "cisgraph_repl_staleness_seconds %.3f\n", s.Staleness().Seconds())
		fmt.Fprintf(w, "# HELP cisgraph_repl_connected 1 while the WAL tail connection to the leader is healthy.\n")
		fmt.Fprintf(w, "# TYPE cisgraph_repl_connected gauge\n")
		fmt.Fprintf(w, "cisgraph_repl_connected %d\n", connected)
		if s.tail != nil {
			fmt.Fprintf(w, "# HELP cisgraph_repl_reconnects Tail reconnect attempts after transport failures.\n")
			fmt.Fprintf(w, "# TYPE cisgraph_repl_reconnects counter\n")
			fmt.Fprintf(w, "cisgraph_repl_reconnects %d\n", s.tail.Reconnects.Load())
			fmt.Fprintf(w, "# HELP cisgraph_repl_rebootstraps Checkpoint re-bootstraps forced by retention races or leader resets.\n")
			fmt.Fprintf(w, "# TYPE cisgraph_repl_rebootstraps counter\n")
			fmt.Fprintf(w, "cisgraph_repl_rebootstraps %d\n", s.tail.Rebootstraps.Load())
			fmt.Fprintf(w, "# HELP cisgraph_repl_records WAL records applied from the leader.\n")
			fmt.Fprintf(w, "# TYPE cisgraph_repl_records counter\n")
			fmt.Fprintf(w, "cisgraph_repl_records %d\n", s.tail.Records.Load())
			fmt.Fprintf(w, "# HELP cisgraph_repl_repoints Leader-URL changes (421 handoffs and watchdog discoveries).\n")
			fmt.Fprintf(w, "# TYPE cisgraph_repl_repoints counter\n")
			fmt.Fprintf(w, "cisgraph_repl_repoints %d\n", s.tail.Repoints.Load())
		}
	}
	degraded := 0
	if s.brk.Open() || s.replDegraded() {
		degraded = 1
	}
	fmt.Fprintf(w, "# HELP cisgraph_degraded 1 while the disk breaker is open (durable writes failing) or replication staleness exceeds its budget.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_degraded gauge\n")
	fmt.Fprintf(w, "cisgraph_degraded %d\n", degraded)
	fmt.Fprintf(w, "# HELP cisgraph_disk_breaker_trips Times the disk breaker opened.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_disk_breaker_trips counter\n")
	fmt.Fprintf(w, "cisgraph_disk_breaker_trips %d\n", s.brk.Trips())
	fmt.Fprintf(w, "# HELP cisgraph_disk_breaker_probes Disk probes attempted while degraded.\n")
	fmt.Fprintf(w, "# TYPE cisgraph_disk_breaker_probes counter\n")
	fmt.Fprintf(w, "cisgraph_disk_breaker_probes %d\n", s.brk.Probes())
}

func writeCounterFamily(w http.ResponseWriter, layer string, snap map[string]int64) {
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "cisgraph_counter{layer=%q,name=%q} %d\n", layer, name, snap[name])
	}
}

// shadowVertices reads the vertex count of the current shadow topology.
func (s *Server) shadowVertices() int { return s.shadow.Load().NumVertices() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONBody writes an already-encoded JSON body (the answers cache).
func writeJSONBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
