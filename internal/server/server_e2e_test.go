package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cisgraph/internal/algo"
	"cisgraph/internal/core"
	"cisgraph/internal/graph"
	"cisgraph/internal/resilience"
)

// testServerConfig keeps windows small so e2e streams exercise multiple
// size and timer cuts.
func testServerConfig() Config {
	return Config{
		BatchMaxSize:  64,
		BatchMaxWait:  5 * time.Millisecond,
		QueueCapacity: 4096,
		Shards:        2,
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postUpdatesHTTP(t *testing.T, client *http.Client, base string, batch []graph.Update) {
	t.Helper()
	wire := make([]updateJSON, len(batch))
	for i, u := range batch {
		op := "add"
		if u.Del {
			op = "del"
		}
		wire[i] = updateJSON{Op: op, From: u.From, To: u.To, W: u.W}
	}
	resp, body := postJSON(t, client, base+"/v1/updates", updatesRequest{Updates: wire})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/updates: status %d: %s", resp.StatusCode, body)
	}
}

func waitQuiescedSrv(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Quiesced() {
		if time.Now().After(deadline) {
			t.Fatal("server did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

// End-to-end: answers served over HTTP after a streamed update sequence are
// identical to an offline MultiCISO run over the same stream, then survive a
// drain + restore-from-checkpoint/WAL round trip mid-stream.
func TestServerEndToEndMatchesOfflineAcrossRestart(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	dir := t.TempDir()
	cfg := testServerConfig()
	cfg.WALPath = filepath.Join(dir, "srv.wal")
	cfg.CheckpointPath = filepath.Join(dir, "srv.ckpt")

	srv, err := New(w.Initial(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	// Offline reference over the same initial topology and query set.
	var qs []core.Query
	for _, p := range w.QueryPairsConnected(5) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	ref := core.NewMultiCISO()
	ref.Reset(w.Initial(), a, qs)

	for _, q := range qs {
		resp, body := postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/query: status %d: %s", resp.StatusCode, body)
		}
	}

	// First half of the stream over HTTP; the server cuts its own windows,
	// which need not match the workload's batch boundaries — the converged
	// answers are boundary-independent.
	var replayed [][]graph.Update
	for i := 0; i < 6; i++ {
		b := w.NextBatch()
		replayed = append(replayed, b)
		postUpdatesHTTP(t, client, ts.URL, b)
	}
	waitQuiescedSrv(t, srv)
	for _, b := range replayed {
		ref.ApplyBatch(b)
	}
	checkAnswers(t, client, ts.URL, qs, ref.Answers(), "pre-restart")

	// SIGTERM path: stop HTTP, drain (flush window + final checkpoint + WAL
	// close), then restore a fresh server from the durable artefacts alone.
	ts.Close()
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, _, err := resilience.ReadCheckpointFile(cfg.CheckpointPath); err != nil {
		t.Fatalf("drain left no readable checkpoint: %v", err)
	}

	srv2, err := Restore(a, cfg, nil) // nil init: the checkpoint must carry everything
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Pool().NumQueries() != len(qs) {
		t.Fatalf("restore re-armed %d queries, want %d", srv2.Pool().NumQueries(), len(qs))
	}
	if srv2.Applied() != srv.Applied() {
		t.Fatalf("restore at batch %d, drained server at %d", srv2.Applied(), srv.Applied())
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := ts2.Client()
	checkAnswers(t, client2, ts2.URL, qs, ref.Answers(), "post-restart")

	// Second half of the stream against the restored server.
	for i := 0; i < 6; i++ {
		b := w.NextBatch()
		ref.ApplyBatch(b)
		postUpdatesHTTP(t, client2, ts2.URL, b)
	}
	waitQuiescedSrv(t, srv2)
	checkAnswers(t, client2, ts2.URL, qs, ref.Answers(), "post-restart stream")
	if err := srv2.Drain(); err != nil {
		t.Fatalf("final drain: %v", err)
	}
}

func checkAnswers(t *testing.T, client *http.Client, base string, qs []core.Query, want []algo.Value, phase string) {
	t.Helper()
	var resp answersResponse
	if r := getJSON(t, client, base+"/v1/answers", &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("%s: GET /v1/answers status %d", phase, r.StatusCode)
	}
	if len(resp.Answers) != len(qs) {
		t.Fatalf("%s: served %d answers, want %d", phase, len(resp.Answers), len(qs))
	}
	for i, ans := range resp.Answers {
		if ans.S != qs[i].S || ans.D != qs[i].D {
			t.Fatalf("%s: answer %d is Q(%d->%d), want Q(%d->%d)", phase, i, ans.S, ans.D, qs[i].S, qs[i].D)
		}
		if float64(ans.Value) != want[i] {
			t.Errorf("%s: Q(%d->%d): served %v, offline %v", phase, ans.S, ans.D, float64(ans.Value), want[i])
		}
	}
}

// The HTTP surface: validation errors, admission control, health and metrics.
func TestServerAPISurface(t *testing.T) {
	w := testWorkload(t)
	cfg := testServerConfig()
	cfg.MaxQueries = 2
	srv, err := New(w.Initial(), testAlgo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	n := uint32(w.NumVertices())

	// Query validation.
	for _, tc := range []struct {
		req  queryRequest
		want int
	}{
		{queryRequest{S: 0, D: n + 5}, http.StatusBadRequest}, // out of range
		{queryRequest{S: 3, D: 3}, http.StatusBadRequest},     // s == d
		{queryRequest{S: 0, D: 1}, http.StatusOK},
		{queryRequest{S: 1, D: 2}, http.StatusOK},
		{queryRequest{S: 2, D: 3}, http.StatusTooManyRequests}, // MaxQueries
	} {
		resp, body := postJSON(t, client, ts.URL+"/v1/query", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("query %+v: status %d, want %d (%s)", tc.req, resp.StatusCode, tc.want, body)
		}
	}

	// Update validation.
	resp, _ := postJSON(t, client, ts.URL+"/v1/updates", map[string]any{
		"updates": []map[string]any{{"op": "frob", "from": 0, "to": 1, "w": 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad op: status %d, want 400", resp.StatusCode)
	}

	// Answer by id, and an unknown id.
	var one answersResponse
	if r := getJSON(t, client, ts.URL+"/v1/answers?id=1", &one); r.StatusCode != http.StatusOK {
		t.Errorf("answers?id=1: status %d", r.StatusCode)
	} else if len(one.Answers) != 1 || one.Answers[0].ID != 1 {
		t.Errorf("answers?id=1: got %+v", one.Answers)
	}
	if r := getJSON(t, client, ts.URL+"/v1/answers?id=99", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("answers?id=99: status %d, want 404", r.StatusCode)
	}

	// Health reflects the live state.
	var hz healthzResponse
	getJSON(t, client, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Queries != 2 || hz.Shards != 2 || hz.Algorithm == "" {
		t.Errorf("healthz: %+v", hz)
	}

	// Metrics render both counter layers and the gauges.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		fmt.Sprintf("cisgraph_counter{layer=\"server\",name=%q}", CntQueriesRegistered),
		"cisgraph_counter{layer=\"engine\"",
		"cisgraph_ingest_pending",
		"cisgraph_edges",
		"cisgraph_queries 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Draining refuses new work.
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: 4, D: 5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query while draining: status %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, client, ts.URL+"/v1/updates", updatesRequest{
		Updates: []updateJSON{{Op: "add", From: 0, To: 1, W: 1}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("updates while draining: status %d, want 503", resp.StatusCode)
	}
	getJSON(t, client, ts.URL+"/healthz", &hz)
	if hz.Status != "draining" {
		t.Errorf("healthz status %q while draining, want draining", hz.Status)
	}
}

// Backpressure: a tiny queue under OverflowReject turns POSTs into 429s with
// Retry-After; under OverflowShed they are accepted and the oldest queued
// updates are dropped, all surfaced in the response body.
func TestServerBackpressure(t *testing.T) {
	w := testWorkload(t)

	cfg := testServerConfig()
	cfg.BatchMaxSize = 8
	cfg.BatchMaxWait = time.Hour // the queue only drains by size cuts
	cfg.QueueCapacity = 8
	cfg.OnFull = OverflowReject
	srv, err := New(w.Initial(), testAlgo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := make([]updateJSON, 9)
	for i := range big {
		big[i] = updateJSON{Op: "add", From: 0, To: uint32(i + 1), W: 1}
	}
	// 9 > capacity 8: rejected outright no matter the queue's fill level.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/updates", updatesRequest{Updates: big})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized POST: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	cfg.OnFull = OverflowShed
	srv2, err := New(w.Initial(), testAlgo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Drain()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, body := postJSON(t, ts2.Client(), ts2.URL+"/v1/updates", updatesRequest{Updates: big})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("shed POST: status %d: %s", resp.StatusCode, body)
	}
	var ur updatesResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Accepted == 0 {
		t.Errorf("shed POST accepted nothing: %+v", ur)
	}
}
