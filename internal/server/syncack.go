package server

import (
	"sync"
)

// followerMarks tracks, per follower, the highest WAL index the follower has
// proven durable. The proof is the replication tail request itself: a
// promotable follower appends-and-fsyncs records locally BEFORE applying
// them, so asking for records from N implies everything below N is on its
// disk. The leader's Source reports each tail's resume position here
// (Source.OnTailFrom), and the fast path gates sync-replicated acks on the
// k-th highest mark (Config.SyncFollowers).
//
// Followers are keyed by the host of their remote address — an
// approximation that is exact for the single-sync-follower deployments the
// chaos harness exercises, and documented as such in DESIGN.md §17. Two
// followers behind one NAT would share a key and could over-count; deploy
// sync followers on distinct hosts.
type followerMarks struct {
	mu    sync.Mutex
	marks map[string]uint64

	// notify wakes the sync-ack resolver when any mark advances. 1-buffered:
	// a pending wakeup coalesces concurrent advances.
	notify chan struct{}
}

func newFollowerMarks() *followerMarks {
	return &followerMarks{
		marks:  make(map[string]uint64),
		notify: make(chan struct{}, 1),
	}
}

// observe records that peer has everything below `from` durable. Marks only
// advance — a follower re-bootstrapping from an older checkpoint does not
// un-prove what it already fsynced.
func (f *followerMarks) observe(peer string, from uint64) {
	f.mu.Lock()
	advanced := from > f.marks[peer]
	if advanced {
		f.marks[peer] = from
	}
	f.mu.Unlock()
	if advanced {
		select {
		case f.notify <- struct{}{}:
		default:
		}
	}
}

// kth returns the k-th highest mark: the WAL index below which at least k
// followers have proven durability. Zero when fewer than k followers have
// ever tailed.
func (f *followerMarks) kth(k int) uint64 {
	if k <= 0 {
		return ^uint64(0)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.marks) < k {
		return 0
	}
	// Tiny map (one entry per follower); selection by repeated max-scan.
	picked := make(map[string]bool, k)
	var kthBest uint64
	for i := 0; i < k; i++ {
		var bestPeer string
		var best uint64
		found := false
		for peer, m := range f.marks {
			if picked[peer] {
				continue
			}
			if !found || m > best {
				best, bestPeer, found = m, peer, true
			}
		}
		picked[bestPeer] = true
		kthBest = best
	}
	return kthBest
}
