package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cisgraph/internal/core"
	"cisgraph/internal/watch"
)

// /v1/watch — answer subscription endpoint (DESIGN.md §15).
//
// Two delivery modes share one wire schema:
//
//   - SSE (default): the response streams `event: <type>` / `data: <json>`
//     frames until the client disconnects or the server drains.
//   - Long-poll (?mode=poll): the request parks until the first relevant
//     commit (or `wait` elapses) and returns one JSON envelope; the client
//     re-requests with ?from=<pos> to continue.
//
// Event types: "init" opens every subscription with the current stream
// position (and resync=true when the client's ?from is behind it — the
// client must GET /v1/answers before trusting deltas); "delta" carries one
// commit's changed answers; "resync" marks a gap (slow consumer or follower
// re-bootstrap) after which the client must re-read /v1/answers.
//
// Filters: ?id=<query id> follows one query; ?src=<vertex> follows every
// query with that source (including ones registered after the subscription);
// no filter follows everything.

// watchDeltaJSON is the wire form of one changed answer.
type watchDeltaJSON struct {
	ID    int       `json:"id"`
	Value WireValue `json:"value"`
}

// watchEventJSON is the wire form of every /v1/watch event and of the
// long-poll envelope.
type watchEventJSON struct {
	// Pos is the global stream position the event describes.
	Pos uint64 `json:"pos"`
	// Ts is the commit's UnixNano stamp (delta events only): clients
	// measure commit→delivery latency as now-ts.
	Ts int64 `json:"ts,omitempty"`
	// Resync tells the client to re-read /v1/answers before continuing.
	Resync bool `json:"resync,omitempty"`
	// Changed lists the commit's relevant answer movements, ascending id.
	Changed []watchDeltaJSON `json:"changed,omitempty"`
}

// publishWatch fans one commit's changed answers out to watch subscribers.
// Runs on the commit path AFTER the pool snapshot and s.applied reflect pos,
// preserving the hub's resync guarantee. With no subscribers it is two
// atomic loads.
func (s *Server) publishWatch(pos uint64, changed []core.ChangedAnswer) {
	if len(changed) == 0 || s.hub.Subscribers() == 0 {
		return
	}
	events := make([]watch.Event, len(changed))
	for i, ca := range changed {
		events[i] = watch.Event{ID: ca.Index, Value: ca.Value}
	}
	s.hub.Publish(pos, time.Now().UnixNano(), events)
}

// watchFilter builds the subscriber's id filter from the request, reading
// the live pool snapshot so src filters cover queries registered after the
// subscription. The second return is a human-readable parse error.
func (s *Server) watchFilter(r *http.Request) (func(int) bool, string) {
	q := r.URL.Query()
	idStr, srcStr := q.Get("id"), q.Get("src")
	switch {
	case idStr != "" && srcStr != "":
		return nil, "id and src filters are mutually exclusive"
	case idStr != "":
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 {
			return nil, fmt.Sprintf("bad id %q", idStr)
		}
		return func(i int) bool { return i == id }, ""
	case srcStr != "":
		src64, err := strconv.ParseUint(srcStr, 10, 32)
		if err != nil {
			return nil, fmt.Sprintf("bad src %q", srcStr)
		}
		src := uint32(src64)
		pool := s.pool
		return func(i int) bool {
			qs := pool.Answers().Queries
			return i < len(qs) && qs[i].S == src
		}, ""
	default:
		return nil, ""
	}
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	s.stampReplHeaders(w)
	if s.rejectIfTooStale(w, r) {
		return
	}
	if s.draining.Load() {
		s.h.watchRejected.Inc()
		httpError(w, http.StatusServiceUnavailable, "draining, not accepting subscriptions")
		return
	}
	if int(s.hub.Subscribers()) >= s.cfg.MaxWatchers {
		s.h.watchRejected.Inc()
		retryAfter(w, 1)
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("watch subscriber limit %d reached", s.cfg.MaxWatchers))
		return
	}
	filter, perr := s.watchFilter(r)
	if perr != "" {
		httpError(w, http.StatusBadRequest, perr)
		return
	}
	var from uint64
	haveFrom := false
	if f := r.URL.Query().Get("from"); f != "" {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad from %q", f))
			return
		}
		from, haveFrom = v, true
	}

	// Subscribe BEFORE reading the position: a commit between the position
	// read and the subscription would otherwise be lost. The inverse order
	// (subscribe, then read) at worst delivers a delta the init position
	// already covers, which the client de-duplicates by pos.
	sub := s.hub.Subscribe(s.cfg.WatchQueue, filter)
	if sub == nil {
		s.h.watchRejected.Inc()
		httpError(w, http.StatusServiceUnavailable, "draining, not accepting subscriptions")
		return
	}
	defer sub.Cancel()
	s.h.watchConns.Inc()
	pos := s.applied.Load()
	// A client resuming from an older (or, after a leader reset, newer)
	// position missed commits it cannot recover from the stream: tell it to
	// re-read the full answer state first.
	needResync := haveFrom && from != pos

	if r.URL.Query().Get("mode") == "poll" {
		s.watchPoll(w, r, sub, pos, needResync)
		return
	}
	s.watchSSE(w, r, sub, pos, needResync)
}

// watchSSE streams events until the client goes away or the hub closes
// (drain). The handler runs outside the TimeoutHandler, so the Flusher is
// the real connection.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, sub *watch.Sub, pos uint64, needResync bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if !writeSSE(w, "init", watchEventJSON{Pos: pos, Resync: needResync}) {
		return
	}
	fl.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case m, okc := <-sub.C:
			if !okc {
				// Drain: tell the client the stream ended cleanly.
				writeSSE(w, "bye", watchEventJSON{Pos: s.applied.Load()})
				fl.Flush()
				return
			}
			if !writeSSE(w, sseType(m), sseBody(m)) {
				return
			}
			// Coalesce whatever is already queued into this flush.
			for {
				select {
				case m2, ok2 := <-sub.C:
					if !ok2 {
						writeSSE(w, "bye", watchEventJSON{Pos: s.applied.Load()})
						fl.Flush()
						return
					}
					if !writeSSE(w, sseType(m2), sseBody(m2)) {
						return
					}
				default:
					fl.Flush()
					goto next
				}
			}
		next:
		}
	}
}

// watchPoll parks for the first relevant message (bounded by ?wait, default
// 10s, capped at 60s) and returns one JSON envelope. A resync need is
// answered immediately.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, sub *watch.Sub, pos uint64, needResync bool) {
	if needResync {
		writeJSON(w, http.StatusOK, watchEventJSON{Pos: pos, Resync: true})
		return
	}
	wait := 10 * time.Second
	if ws := r.URL.Query().Get("wait"); ws != "" {
		if d, err := time.ParseDuration(ws); err == nil && d > 0 {
			wait = min(d, time.Minute)
		}
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-r.Context().Done():
	case <-t.C:
		// Nothing moved: report the current position so the client's next
		// ?from stays fresh.
		writeJSON(w, http.StatusOK, watchEventJSON{Pos: s.applied.Load()})
	case m, ok := <-sub.C:
		if !ok {
			writeJSON(w, http.StatusOK, watchEventJSON{Pos: s.applied.Load(), Resync: true})
			return
		}
		writeJSON(w, http.StatusOK, sseBody(m))
	}
}

func sseType(m watch.Msg) string {
	if m.Resync {
		return "resync"
	}
	return "delta"
}

func sseBody(m watch.Msg) watchEventJSON {
	ev := watchEventJSON{Pos: m.Pos, Ts: m.TsNano, Resync: m.Resync}
	if len(m.Events) > 0 {
		ev.Changed = make([]watchDeltaJSON, len(m.Events))
		for i, e := range m.Events {
			ev.Changed[i] = watchDeltaJSON{ID: e.ID, Value: WireValue(e.Value)}
		}
	}
	return ev
}

// writeSSE emits one `event:`/`data:` frame; false means the client is gone.
func writeSSE(w http.ResponseWriter, typ string, body watchEventJSON) bool {
	data, err := json.Marshal(body)
	if err != nil {
		return false
	}
	_, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, data)
	return werr == nil
}
