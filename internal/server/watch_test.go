package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cisgraph/internal/core"
	"cisgraph/internal/graph"
)

// sseEvent is one parsed `event:`/`data:` frame.
type sseEvent struct {
	typ  string
	body watchEventJSON
}

// openWatch subscribes to /v1/watch and returns a channel of parsed events
// (closed at stream end) plus a cancel func. A background goroutine owns the
// blocking reads so tests can apply their own timeouts.
func openWatch(t *testing.T, client *http.Client, url string) (<-chan sseEvent, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type %q", ct)
	}
	events := make(chan sseEvent, 256)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.typ = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.body); err != nil {
					return
				}
			case line == "":
				if ev.typ != "" {
					select {
					case events <- ev:
					case <-ctx.Done():
						return
					}
					ev = sseEvent{}
				}
			}
		}
	}()
	return events, func() {
		cancel()
		resp.Body.Close()
	}
}

// nextEvent receives one event with a timeout; ok=false means the stream
// ended or nothing arrived in time.
func nextEvent(events <-chan sseEvent, timeout time.Duration) (sseEvent, bool) {
	select {
	case ev, ok := <-events:
		return ev, ok
	case <-time.After(timeout):
		return sseEvent{}, false
	}
}

// Watch subscribers see an init event, then every subsequent commit that
// moved an answer, in order; replaying the deltas over the initial answers
// reproduces the polled /v1/answers state exactly.
func TestWatchSSEDeltasMatchAnswers(t *testing.T) {
	w := testWorkload(t)
	srv, err := New(w.Initial(), testAlgo(t), testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var qs []core.Query
	for _, p := range w.QueryPairsConnected(6) {
		qs = append(qs, core.Query{S: p[0], D: p[1]})
	}
	view := make(map[int]float64)
	for i, q := range qs {
		var qr queryResponse
		resp, body := postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/query: status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		view[i] = float64(qr.Answer)
	}

	events, stop := openWatch(t, client, ts.URL+"/v1/watch")
	defer stop()
	ev, ok := nextEvent(events, 5*time.Second)
	if !ok || ev.typ != "init" || ev.body.Resync {
		t.Fatalf("first event %+v ok=%v, want clean init", ev, ok)
	}

	for i := 0; i < 8; i++ {
		postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	}
	waitQuiescedSrv(t, srv)
	var ans answersResponse
	getJSON(t, client, ts.URL+"/v1/answers", &ans)

	// Drain deltas until replaying them over the registration-time answers
	// reproduces the polled state. A commit that moved nothing produces no
	// event, so the exit condition is view convergence, not position.
	matches := func() bool {
		for _, a := range ans.Answers {
			if view[a.ID] != float64(a.Value) {
				return false
			}
		}
		return true
	}
	lastPos := ev.body.Pos
	for !matches() {
		ev, ok := nextEvent(events, 10*time.Second)
		if !ok {
			t.Fatalf("watch stream dried up before converging on polled answers (pos %d, answers at %d)",
				lastPos, ans.Batches)
		}
		if ev.typ != "delta" {
			t.Fatalf("unexpected %s event mid-stream: %+v", ev.typ, ev.body)
		}
		if ev.body.Pos <= lastPos {
			t.Fatalf("positions not increasing: %d after %d", ev.body.Pos, lastPos)
		}
		if ev.body.Ts <= 0 {
			t.Fatalf("delta missing commit timestamp: %+v", ev.body)
		}
		if ev.body.Pos > ans.Batches {
			t.Fatalf("delta at pos %d beyond the polled snapshot %d without converging", ev.body.Pos, ans.Batches)
		}
		lastPos = ev.body.Pos
		for _, d := range ev.body.Changed {
			view[d.ID] = float64(d.Value)
		}
	}
	if got := srv.Counters().Get(CntWatchConns); got < 1 {
		t.Errorf("%s=%d, want >=1", CntWatchConns, got)
	}

	// Metrics expose the watch gauges/counters.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, m := range []string{"cisgraph_watch_subscribers", "cisgraph_watch_deltas"} {
		if !bytes.Contains(mb, []byte(m)) {
			t.Errorf("/metrics missing %s", m)
		}
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// Long-poll mode: an up-to-date client parks until a commit moves an answer;
// a client resuming from a stale position is told to resync immediately.
func TestWatchLongPoll(t *testing.T) {
	w := testWorkload(t)
	srv, err := New(w.Initial(), testAlgo(t), testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	p := w.QueryPairsConnected(1)[0]
	postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: p[0], D: p[1]})

	done := make(chan watchEventJSON, 1)
	go func() {
		var ev watchEventJSON
		getJSON(t, client, ts.URL+"/v1/watch?mode=poll&wait=2s", &ev)
		done <- ev
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	for i := 0; i < 4; i++ {
		postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	}
	waitQuiescedSrv(t, srv)
	select {
	case ev := <-done:
		if ev.Resync {
			t.Fatalf("unexpected resync: %+v", ev)
		}
		if ev.Pos == 0 && len(ev.Changed) > 0 {
			t.Fatalf("delta without position: %+v", ev)
		}
	case <-time.After(6 * time.Second):
		t.Fatal("long-poll never returned")
	}

	if srv.Applied() == 0 {
		t.Fatal("no batch committed")
	}
	// from=0 is behind any committed position: the client must resync.
	var stale watchEventJSON
	getJSON(t, client, ts.URL+"/v1/watch?mode=poll&from=0", &stale)
	if !stale.Resync {
		t.Fatalf("stale resume got %+v, want resync", stale)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// End-to-end differential guard for change-driven skipping: two servers —
// production (skip on) and DisableChangeSkip — fed the identical batch
// sequence must serve byte-identical /v1/answers bodies (including the
// global position) after every batch, while only the skip server's
// update_skipped_queries counter moves.
func TestServerChangeSkipDifferentialHTTP(t *testing.T) {
	w1, w2 := testWorkload(t), testWorkload(t)
	a := testAlgo(t)
	mk := func(w0 *graph.Dynamic, disable bool) (*Server, *httptest.Server) {
		cfg := testServerConfig()
		cfg.DisableChangeSkip = disable
		srv, err := New(w0, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}
	skipSrv, skipTS := mk(w1.Initial(), false)
	defer skipTS.Close()
	fullSrv, fullTS := mk(w2.Initial(), true)
	defer fullTS.Close()

	// Clustered sources so source groups exist (the skip unit of proof).
	pairs := w1.QueryPairsConnected(4)
	var qs []core.Query
	for _, p := range pairs {
		for _, p2 := range pairs {
			if p[0] != p2[1] {
				qs = append(qs, core.Query{S: p[0], D: p2[1]})
			}
		}
	}
	for _, q := range qs {
		for _, ts := range []*httptest.Server{skipTS, fullTS} {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{S: q.S, D: q.D})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /v1/query: status %d: %s", resp.StatusCode, body)
			}
		}
	}

	readBody := func(ts *httptest.Server) []byte {
		resp, err := ts.Client().Get(ts.URL + "/v1/answers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Drive both pipelines with identical, deterministic batch boundaries
	// (the exported ingest path cuts its own windows, which would desync the
	// position counters between the two servers). Small batches keep their
	// dirty regions bounded so skipping has room to engage.
	var chunks [][]graph.Update
	for i := 0; i < 3; i++ {
		b := w1.NextBatch()
		w2.NextBatch() // keep the twin workload in lockstep
		for len(b) > 0 {
			n := min(8, len(b))
			chunks = append(chunks, b[:n])
			b = b[n:]
		}
	}
	for i, c := range chunks {
		skipSrv.applyBatch(c, CutSize)
		fullSrv.applyBatch(c, CutSize)
		sb, fb := readBody(skipTS), readBody(fullTS)
		if !bytes.Equal(sb, fb) {
			t.Fatalf("chunk %d: /v1/answers bodies diverged\nskip: %s\nfull: %s", i, sb, fb)
		}
	}
	if got := skipSrv.Pool().Counters().Get("update_skipped_queries"); got == 0 {
		t.Error("skip server never skipped a query (update_skipped_queries=0)")
	}
	if got := fullSrv.Pool().Counters().Get("update_skipped_queries"); got != 0 {
		t.Errorf("DisableChangeSkip server skipped %d queries, want 0", got)
	}
	if err := skipSrv.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := fullSrv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// Followers push the same delta stream their leader committed, and a
// checkpoint re-bootstrap surfaces as a resync marker after which deltas
// resume.
func TestFollowerWatchDeltasAndRebootstrapResync(t *testing.T) {
	w := testWorkload(t)
	a := testAlgo(t)
	dir := t.TempDir()
	lcfg := testServerConfig()
	lcfg.WALPath = filepath.Join(dir, "wal")
	lcfg.CheckpointPath = filepath.Join(dir, "ckpt")
	leader, err := New(w.Initial(), a, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	lsrv := httptest.NewServer(leader.Handler())
	defer lsrv.Close()

	fcfg := Config{FollowURL: lsrv.URL, ReplLongPoll: 250 * time.Millisecond,
		ReplBackoffBase: 10 * time.Millisecond, ReplBackoffMax: 100 * time.Millisecond}
	fol, err := StartFollower(a, fcfg, func() (*graph.Dynamic, error) { return w.Initial(), nil })
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(fol.Handler())
	defer fsrv.Close()

	// Watch deltas come from the watching node's own pool: register the
	// queries on the follower (reads are follower-local; only writes are
	// leader-only).
	for _, q := range w.QueryPairsConnected(3) {
		resp, body := postJSON(t, fsrv.Client(), fsrv.URL+"/v1/query", queryRequest{S: q[0], D: q[1]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follower POST /v1/query: status %d: %s", resp.StatusCode, body)
		}
	}

	events, stop := openWatch(t, fsrv.Client(), fsrv.URL+"/v1/watch")
	defer stop()
	if ev, ok := nextEvent(events, 5*time.Second); !ok || ev.typ != "init" {
		t.Fatalf("follower watch first event %+v ok=%v", ev, ok)
	}

	// Stream until the watched queries provably move: the leader's own pool
	// reports changed answers, so once leader deltas exist the follower must
	// fan out the same changes.
	sawDelta := false
	for i := 0; i < 40 && !sawDelta; i++ {
		postUpdatesHTTP(t, lsrv.Client(), lsrv.URL, w.NextBatch())
		waitQuiescedSrv(t, leader)
		waitFollowerAt(t, fol, leader.Applied())
		for {
			ev, ok := nextEvent(events, 50*time.Millisecond)
			if !ok {
				break
			}
			if ev.typ == "delta" && len(ev.body.Changed) > 0 {
				sawDelta = true
			}
		}
	}
	if !sawDelta {
		t.Fatal("no delta arrived on the follower watch stream")
	}

	// Force the re-bootstrap path the retention race takes: reload from the
	// leader's checkpoint. Watchers must see a resync marker.
	if err := leader.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := fol.rebootstrapFromLeader(fsrv.Client(), lsrv.URL); err != nil {
		t.Fatal(err)
	}
	gotResync := false
	for !gotResync {
		ev, ok := nextEvent(events, 10*time.Second)
		if !ok {
			t.Fatal("no resync marker after re-bootstrap")
		}
		if ev.typ == "resync" {
			gotResync = true
		}
	}

	// Deltas resume after the marker.
	sawDelta = false
	for i := 0; i < 40 && !sawDelta; i++ {
		postUpdatesHTTP(t, lsrv.Client(), lsrv.URL, w.NextBatch())
		waitQuiescedSrv(t, leader)
		waitFollowerAt(t, fol, leader.Applied())
		for {
			ev, ok := nextEvent(events, 50*time.Millisecond)
			if !ok {
				break
			}
			if ev.typ == "delta" {
				sawDelta = true
			}
		}
	}
	if !sawDelta {
		t.Fatal("no delta after re-bootstrap resync")
	}
	if err := fol.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Drain(); err != nil {
		t.Fatal(err)
	}
}

// The /v1/answers body cache serves identical bytes between commits and
// invalidates on registration and commit.
func TestAnswersBodyCache(t *testing.T) {
	w := testWorkload(t)
	srv, err := New(w.Initial(), testAlgo(t), testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	pairs := w.QueryPairsConnected(2)
	postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: pairs[0][0], D: pairs[0][1]})

	read := func() []byte {
		resp, err := client.Get(ts.URL + "/v1/answers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	b1, b2 := read(), read()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("idle re-read changed body:\n%s\n%s", b1, b2)
	}
	if hits := srv.Counters().Get(CntAnswersCacheHits); hits < 1 {
		t.Errorf("%s=%d, want >=1", CntAnswersCacheHits, hits)
	}

	// Registration invalidates (new query must appear immediately).
	postJSON(t, client, ts.URL+"/v1/query", queryRequest{S: pairs[1][0], D: pairs[1][1]})
	var ans answersResponse
	if err := json.Unmarshal(read(), &ans); err != nil {
		t.Fatal(err)
	}
	if len(ans.Answers) != 2 {
		t.Fatalf("post-registration listing has %d answers, want 2", len(ans.Answers))
	}

	// Commit invalidates (position must advance).
	before := ans.Batches
	postUpdatesHTTP(t, client, ts.URL, w.NextBatch())
	waitQuiescedSrv(t, srv)
	if err := json.Unmarshal(read(), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Batches <= before {
		t.Fatalf("position stuck at %d after commit", ans.Batches)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
