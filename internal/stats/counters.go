// Package stats provides the measurement substrate shared by the CISGraph
// engines, the hardware model, and the experiment harness: named event
// counters, stopwatch-style timers, and summary math (geometric means,
// ratios) used to render the paper's tables and figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter names used across the engines and the hardware model. Engines are
// free to define additional names; these are the ones the experiment harness
// interprets.
const (
	// CntRelax counts ⊕ applications (edge relaxation attempts). This is
	// the paper's notion of "computations" (Fig. 5a).
	CntRelax = "relax"
	// CntActivation counts vertex activations: a vertex whose state changed
	// and which was enqueued for propagation (Fig. 5b).
	CntActivation = "activation"
	// CntStateUpdate counts committed vertex-state writes.
	CntStateUpdate = "state_update"
	// CntUpdateValuable / CntUpdateDelayed / CntUpdateUseless count the
	// classification outcome of batch updates (Algorithm 1).
	CntUpdateValuable = "update_valuable"
	CntUpdateDelayed  = "update_delayed"
	CntUpdateUseless  = "update_useless"
	// CntUpdateSafe / CntUpdateUnsafe count the per-update fast path's
	// routing decision (fastpath.go): safe updates commit with a
	// topology-only write, unsafe updates serialize through the batch
	// machinery. Both are per-engine, not per-query.
	CntUpdateSafe   = "update_safe"
	CntUpdateUnsafe = "update_unsafe"
	// CntUpdatePromoted counts delayed deletions promoted to non-delayed
	// because a key-path change rerouted the query through them.
	CntUpdatePromoted = "update_promoted"
	// CntUpdateSkipQueries / CntUpdateSkipGroups count change-driven
	// multi-query skipping (DESIGN.md §15): queries whose source group a
	// batch provably cannot affect never run their per-query phases.
	// SkipQueries is the per-query tally (the O(changed)-not-O(Q) proof);
	// SkipGroups counts the per-source decisions behind it. Both are
	// per-engine, not per-query — a skipped query does no work, so it
	// accrues nothing.
	CntUpdateSkipQueries = "update_skipped_queries"
	CntUpdateSkipGroups  = "update_skip_groups"
	// CntTagged counts vertices visited by deletion-recovery tagging.
	CntTagged = "tagged"
	// Parallel-propagation counters (DESIGN.md §16). CntRelaxCASRetries
	// counts lost value-CAS races during parallel relaxation (contention, not
	// extra semantic work — the retried offer is re-judged against the newer
	// value). CntParallelBuckets counts bucket rounds executed by the
	// parallel propagator. CntParallelFallbacks counts drains that had a
	// parallel propagator attached but completed serially (overlay store, or
	// the frontier never reached the parallel threshold).
	CntRelaxCASRetries   = "relax_cas_retries"
	CntParallelBuckets   = "parallel_buckets"
	CntParallelFallbacks = "parallel_fallbacks"
	// CntHubRelax counts relaxations spent maintaining SGraph hub distances
	// (the paper's "boundary maintaining" overhead).
	CntHubRelax = "hub_relax"
	// CntPruned counts vertices pruned by SGraph's bound test.
	CntPruned = "pruned"

	// Resilience counters (internal/resilience): per-reason drop counts from
	// the ingestion sanitizer and recovery events from the engine guard.
	CntDropOutOfRange = "drop_out_of_range"
	CntDropSelfLoop   = "drop_self_loop"
	CntDropBadWeight  = "drop_bad_weight"
	CntDropDupAdd     = "drop_dup_add"
	CntDropAbsentDel  = "drop_absent_del"
	// CntBatchRejected counts whole batches refused under the reject/strict
	// sanitize policies.
	CntBatchRejected = "batch_rejected"
	// CntPanicRecovered counts engine panics caught by resilience.Guard.
	CntPanicRecovered = "panic_recovered"
	// CntAuditFailed counts periodic invariant audits that detected
	// corruption.
	CntAuditFailed = "audit_failed"
	// CntQueryPanic counts per-query panics recovered inside MultiCISO.
	CntQueryPanic = "query_panic"
	// CntRecoverCheckpoint / CntRecoverColdStart count guard recoveries by
	// mechanism: checkpoint restore + replay vs full recompute.
	CntRecoverCheckpoint = "recover_checkpoint"
	CntRecoverColdStart  = "recover_coldstart"

	// Hardware-side counters.
	CntSPMHit    = "spm_hit"
	CntSPMMiss   = "spm_miss"
	CntDRAMRead  = "dram_read"
	CntDRAMWrite = "dram_write"
	CntRowHit    = "dram_row_hit"
	CntRowMiss   = "dram_row_miss"
	// CntDRAMBytes counts bytes moved on the DRAM channels (energy model).
	CntDRAMBytes = "dram_bytes"
	// CntPropBusyCycles accumulates propagation-unit busy time
	// (utilization = busy ÷ (cycles × units)).
	CntPropBusyCycles = "prop_busy_cycles"
)

// Counters is a set of named monotonically increasing event counters.
// The zero value is ready to use. Counters is safe for concurrent use:
// values are atomics and the name table is guarded by a read-write lock, so
// the string-keyed hot path (incrementing an existing counter) takes only a
// read lock — and a Handle resolved once skips the table entirely.
//
// Cells are allocated from contiguous arena chunks in registration order, so
// the counters an engine touches together sit on the same cache lines.
type Counters struct {
	mu    sync.RWMutex
	m     map[string]*atomic.Int64
	ids   map[string]int32 // dense id per name, assigned in registration order
	names []string         // id → name (registration order)
	cells []*atomic.Int64  // id → cell (registration order)

	arena []atomic.Int64 // current chunk; full chunks stay alive via m
	used  int
}

// arenaChunk is the cell-arena growth quantum. Chunks are never moved or
// freed once a cell has been handed out, so Handle pointers stay valid.
const arenaChunk = 64

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*atomic.Int64)}
}

// Handle is a pre-resolved counter: a dense small-integer id plus a direct
// pointer to the counter's arena cell. Resolving once per name with
// Counters.Handle and incrementing through the handle turns each hot-path
// count into a single atomic add — no lock, no map probe, no string hash.
// The zero Handle is invalid; methods on it panic.
type Handle struct {
	id   int32
	cell *atomic.Int64
}

// ID returns the handle's dense id (registration order within its Counters).
func (h Handle) ID() int32 { return h.id }

// Inc increments the handled counter by one.
func (h Handle) Inc() { h.cell.Add(1) }

// Add increments the handled counter by delta.
func (h Handle) Add(delta int64) { h.cell.Add(delta) }

// Value returns the handled counter's current value.
func (h Handle) Value() int64 { return h.cell.Load() }

// Handle resolves (registering if needed) the named counter and returns its
// handle. The handle stays valid for the lifetime of c — cells survive Reset
// (which zeroes values but keeps names) — and observes exactly the same cell
// as the string-keyed API, so Get/Snapshot/Diff/checkpoint output is
// unchanged no matter which face incremented.
func (c *Counters) Handle(name string) Handle {
	cell := c.cell(name)
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Handle{id: c.ids[name], cell: cell}
}

func (c *Counters) cell(name string) *atomic.Int64 {
	c.mu.RLock()
	v, ok := c.m[name]
	c.mu.RUnlock()
	if ok {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*atomic.Int64)
	}
	if v, ok = c.m[name]; !ok {
		if c.used == len(c.arena) {
			c.arena = make([]atomic.Int64, arenaChunk)
			c.used = 0
		}
		v = &c.arena[c.used]
		c.used++
		if c.ids == nil {
			c.ids = make(map[string]int32)
		}
		c.ids[name] = int32(len(c.m))
		c.names = append(c.names, name)
		c.cells = append(c.cells, v)
		c.m[name] = v
	}
	return v
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) { c.cell(name).Add(delta) }

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.cell(name).Add(1) }

// Get returns the current value of the named counter (zero if untouched).
func (c *Counters) Get(name string) int64 {
	c.mu.RLock()
	v, ok := c.m[name]
	c.mu.RUnlock()
	if ok {
		return v.Load()
	}
	return 0
}

// Set overwrites the named counter. Intended for importing values measured
// elsewhere (e.g. simulated cycles).
func (c *Counters) Set(name string, v int64) { c.cell(name).Store(v) }

// Reset zeroes every counter but keeps the names.
func (c *Counters) Reset() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, v := range c.m {
		v.Store(0)
	}
}

// Names returns the touched counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot returns a plain map copy of the current values.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// AddAll merges other into c (c += other).
func (c *Counters) AddAll(other *Counters) {
	if other == nil {
		return
	}
	for k, v := range other.Snapshot() {
		c.Add(k, v)
	}
}

// DenseSnapshot appends the current value of every registered counter, in
// dense-id (registration) order, to buf and returns the result. Passing
// buf[:0] of a retained buffer makes the per-batch "before" capture
// allocation-free at steady state — the map-shaped Snapshot costs a hash
// table per call, which is exactly what the lazy Result counters avoid.
func (c *Counters) DenseSnapshot(buf []int64) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, cell := range c.cells {
		buf = append(buf, cell.Load())
	}
	return buf
}

// DenseDelta returns current − before as a fresh dense-id-ordered slice.
// before must come from DenseSnapshot on the same Counters; counters
// registered after the snapshot diff against zero. The slice is safe to
// retain (it aliases nothing), so a Result can carry it until the caller
// decides whether to materialise the named map.
func (c *Counters) DenseDelta(before []int64) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int64, len(c.cells))
	for i, cell := range c.cells {
		out[i] = cell.Load()
		if i < len(before) {
			out[i] -= before[i]
		}
	}
	return out
}

// DeltaMap resolves a dense delta (from DenseDelta on this Counters) into a
// named map — the materialisation step of the lazy Result counters. Zero
// entries are kept so callers can probe any registered name.
func (c *Counters) DeltaMap(delta []int64) map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(delta))
	for i, v := range delta {
		if i < len(c.names) {
			out[c.names[i]] = v
		}
	}
	return out
}

// AddDelta folds a dense delta measured on src into c (c += delta), matching
// counters by name. It replaces per-batch map materialisation when merging
// per-query deltas into a combined view.
func (c *Counters) AddDelta(src *Counters, delta []int64) {
	src.mu.RLock()
	names := src.names[:min(len(src.names), len(delta))]
	src.mu.RUnlock()
	for i, name := range names {
		if delta[i] != 0 {
			c.Add(name, delta[i])
		}
	}
}

// Diff returns c - prev as a fresh map; counters absent from prev are taken
// as zero. Useful for per-phase attribution.
func (c *Counters) Diff(prev map[string]int64) map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load() - prev[k]
	}
	return out
}

// String renders the counters as "name=value" pairs, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.Get(n))
	}
	return b.String()
}
