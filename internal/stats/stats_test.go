package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	if got := c.Get(CntRelax); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	c.Inc(CntRelax)
	c.Add(CntRelax, 4)
	if got := c.Get(CntRelax); got != 5 {
		t.Fatalf("relax = %d, want 5", got)
	}
	c.Set(CntSPMHit, 42)
	if got := c.Get(CntSPMHit); got != 42 {
		t.Fatalf("set = %d, want 42", got)
	}
}

func TestCountersZeroValueUsable(t *testing.T) {
	var c Counters
	c.Inc("x")
	if c.Get("x") != 1 {
		t.Fatal("zero-value Counters not usable")
	}
}

func TestCountersHandleSharesCellWithStringAPI(t *testing.T) {
	c := NewCounters()
	h := c.Handle(CntRelax)
	h.Inc()
	h.Add(4)
	if got := c.Get(CntRelax); got != 5 {
		t.Fatalf("string view after handle increments = %d, want 5", got)
	}
	c.Inc(CntRelax)
	if got := h.Value(); got != 6 {
		t.Fatalf("handle view after string increment = %d, want 6", got)
	}
	if snap := c.Snapshot(); snap[CntRelax] != 6 {
		t.Fatalf("snapshot = %v", snap)
	}
	if h2 := c.Handle(CntRelax); h2.ID() != h.ID() {
		t.Fatalf("re-resolved handle id %d != %d", h2.ID(), h.ID())
	}
}

func TestCountersHandleIDsDense(t *testing.T) {
	c := NewCounters()
	names := []string{"z", "a", "m", "q"}
	for i, n := range names {
		if id := c.Handle(n).ID(); id != int32(i) {
			t.Fatalf("handle %q id = %d, want registration order %d", n, id, i)
		}
	}
	// Re-resolution must not mint new ids.
	if id := c.Handle("a").ID(); id != 1 {
		t.Fatalf("re-resolved id = %d, want 1", id)
	}
}

func TestCountersHandleSurvivesReset(t *testing.T) {
	c := NewCounters()
	h := c.Handle("x")
	h.Add(7)
	c.Reset()
	if h.Value() != 0 {
		t.Fatal("Reset must zero the handled cell")
	}
	h.Inc()
	if c.Get("x") != 1 {
		t.Fatal("handle detached from cell after Reset")
	}
}

func TestCountersHandleManyCellsSpanChunks(t *testing.T) {
	// More names than one arena chunk: every handle must keep its own cell.
	c := NewCounters()
	const n = 3 * arenaChunk / 2
	hs := make([]Handle, n)
	for i := range hs {
		hs[i] = c.Handle(string(rune('A'+i%26)) + string(rune('0'+i/26)))
		hs[i].Add(int64(i))
	}
	for i, h := range hs {
		if h.Value() != int64(i) {
			t.Fatalf("cell %d = %d, want %d (arena chunk moved?)", i, h.Value(), i)
		}
	}
}

func TestCountersHandleZeroAllocSteadyState(t *testing.T) {
	c := NewCounters()
	h := c.Handle(CntRelax)
	if allocs := testing.AllocsPerRun(200, func() { h.Inc(); h.Add(2) }); allocs != 0 {
		t.Fatalf("handle increments allocate: %v allocs/op", allocs)
	}
}

func TestCountersHandleConcurrent(t *testing.T) {
	c := NewCounters()
	h := c.Handle("hot")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Inc()
				c.Inc("hot") // string facade races against the handle safely
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hot"); got != 16000 {
		t.Fatalf("concurrent total = %d, want 16000", got)
	}
}

func TestCountersReset(t *testing.T) {
	c := NewCounters()
	c.Add("a", 10)
	c.Reset()
	if c.Get("a") != 0 {
		t.Fatal("Reset did not zero counter")
	}
	names := c.Names()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("Names after reset = %v, want [a]", names)
	}
}

func TestCountersNamesSorted(t *testing.T) {
	c := NewCounters()
	c.Inc("zz")
	c.Inc("aa")
	c.Inc("mm")
	names := c.Names()
	want := []string{"aa", "mm", "zz"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestCountersSnapshotAndDiff(t *testing.T) {
	c := NewCounters()
	c.Add("a", 3)
	snap := c.Snapshot()
	c.Add("a", 2)
	c.Add("b", 7)
	d := c.Diff(snap)
	if d["a"] != 2 || d["b"] != 7 {
		t.Fatalf("Diff = %v, want a=2 b=7", d)
	}
	if snap["a"] != 3 {
		t.Fatal("Snapshot must be a copy, not a view")
	}
}

func TestCountersAddAll(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 5)
	a.AddAll(b)
	if a.Get("x") != 3 || a.Get("y") != 5 {
		t.Fatalf("AddAll got x=%d y=%d", a.Get("x"), a.Get("y"))
	}
	a.AddAll(nil) // must not panic
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	if got, want := c.String(), "a=1 b=2"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{10}, 10},
		{nil, 0},
	}
	for _, tc := range cases {
		if got := GeoMean(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("GeoMean(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestGeoMeanSkipsNaNAndClampsZero(t *testing.T) {
	got := GeoMean([]float64{4, math.NaN(), 4})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean with NaN = %v, want 4", got)
	}
	if g := GeoMean([]float64{0, 1}); g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatalf("GeoMean with zero = %v, want finite positive", g)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			x := math.Abs(r)
			if x < 1e-6 || x > 1e6 || math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := MinMax(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even-length median broken")
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if xs[0] != 3 {
		t.Fatal("Median must not reorder input")
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
	if Percent(25, 100) != 25 {
		t.Fatal("Percent")
	}
	if Percent(1, 0) != 0 {
		t.Fatal("Percent of zero total should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Algo", "Speedup")
	tb.AddRow("PPSP", "7.7×")
	tb.AddRow("PPWP", "81.2×")
	s := tb.String()
	for _, want := range []string{"Demo", "Algo", "PPSP", "81.2×"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| PPSP |") || !strings.Contains(md, "| --- |") {
		t.Fatalf("Markdown malformed:\n%s", md)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra")
	s := tb.String()
	if !strings.Contains(s, "extra") {
		t.Fatalf("long row truncated:\n%s", s)
	}
	md := tb.Markdown()
	if strings.Count(strings.Split(md, "\n")[0], "|") != 4 {
		t.Fatalf("markdown header should have 3 columns:\n%s", md)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "Name", "Value")
	tb.AddRowf("%s\t%d", "n", 42)
	if !strings.Contains(tb.String(), "42") {
		t.Fatal("AddRowf lost value")
	}
}

func TestFormatSpeedup(t *testing.T) {
	if got := FormatSpeedup(7.66); got != "7.7×" {
		t.Fatalf("FormatSpeedup(7.66) = %q", got)
	}
	if got := FormatSpeedup(0.93); got != "0.93×" {
		t.Fatalf("FormatSpeedup(0.93) = %q", got)
	}
}
