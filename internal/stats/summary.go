package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. Non-positive entries are clamped
// to a small epsilon so a single zero sample (e.g. a degenerate speedup)
// does not annihilate the mean; NaNs are skipped. An empty input yields 0.
//
// The paper reports GMean speedups in Table IV; this matches that usage.
func GeoMean(xs []float64) float64 {
	const eps = 1e-12
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if x < eps {
			x = eps
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MinMax returns the smallest and largest values of xs.
// Both are 0 for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Ratio returns a/b, or 0 when b == 0. Used for normalised comparisons
// (e.g. computations normalised to CS in Fig. 5a).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percent returns 100*part/total, or 0 when total == 0.
func Percent(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * part / total
}
