package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them as aligned plain text or GitHub
// Markdown. The experiment harness uses it to print the paper's tables and
// the tabular form of its figures.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond len(Headers) are kept, shorter rows are
// padded with empty cells at render time.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row built from fmt verbs, one per column.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	w := t.widths()
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, width := range w {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(w))
	for i, width := range w {
		sep[i] = strings.Repeat("-", width)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	row := func(cells []string, n int) {
		b.WriteByte('|')
		for i := 0; i < n; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteByte(' ')
			b.WriteString(c)
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	n := len(t.widths())
	row(t.Headers, n)
	sep := make([]string, n)
	for i := range sep {
		sep[i] = "---"
	}
	row(sep, n)
	for _, r := range t.rows {
		row(r, n)
	}
	return b.String()
}

// FormatSpeedup renders a speedup multiplier the way the paper prints it:
// one decimal place with a trailing ×, switching to two decimals below 1.
func FormatSpeedup(x float64) string {
	if x < 1 {
		return fmt.Sprintf("%.2f×", x)
	}
	return fmt.Sprintf("%.1f×", x)
}
