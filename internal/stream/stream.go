// Package stream turns a static dataset into a streaming-graph workload
// following the paper's methodology (§IV-A): load 50% of the edges as the
// initial snapshot, then build batches whose additions are drawn from the
// withheld edges and whose deletions sample the currently loaded edges.
package stream

import (
	"fmt"
	"math/rand"

	"cisgraph/internal/graph"
)

// Config controls workload construction.
type Config struct {
	// LoadFraction of the dataset's edges forms the initial snapshot.
	// The paper loads 50%.
	LoadFraction float64
	// AddsPerBatch / DelsPerBatch size each batch. The paper uses 50K+50K
	// on multi-million-edge graphs; the harness scales this with the graph.
	AddsPerBatch int
	DelsPerBatch int
	// Seed makes the split and every batch deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's ratios at a scale proportional to m
// edges: 50% initial load and batches of ~0.12% of the edges each for
// additions and deletions (50K/41.6M ≈ 0.12% on Orkut).
func DefaultConfig(m int, seed int64) Config {
	per := m / 832 // ≈ 0.12% of the full edge set
	if per < 8 {
		per = 8
	}
	return Config{LoadFraction: 0.5, AddsPerBatch: per, DelsPerBatch: per, Seed: seed}
}

// Workload is a reproducible stream: an initial snapshot plus a generator of
// update batches. It tracks which dataset edges are currently loaded so that
// additions always insert absent edges and deletions always remove present
// ones, exactly as the paper constructs its batches.
type Workload struct {
	cfg     Config
	dataset *graph.EdgeList
	rng     *rand.Rand

	initial []graph.Arc // the starting snapshot's edges
	pool    []int       // indices into dataset.Arcs not currently loaded
	loaded  []int       // indices currently loaded
	posIn   map[int]int // arc index -> position in loaded (for O(1) removal)
}

// New splits the dataset and returns the workload. The dataset is not
// modified; the split is a deterministic function of cfg.Seed.
func New(dataset *graph.EdgeList, cfg Config) (*Workload, error) {
	if cfg.LoadFraction <= 0 || cfg.LoadFraction > 1 {
		return nil, fmt.Errorf("stream: load fraction %v out of (0,1]", cfg.LoadFraction)
	}
	if cfg.AddsPerBatch < 0 || cfg.DelsPerBatch < 0 {
		return nil, fmt.Errorf("stream: negative batch size")
	}
	w := &Workload{
		cfg:     cfg,
		dataset: dataset,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		posIn:   make(map[int]int),
	}
	perm := w.rng.Perm(len(dataset.Arcs))
	nLoad := int(cfg.LoadFraction * float64(len(dataset.Arcs)))
	for i, idx := range perm {
		if i < nLoad {
			w.posIn[idx] = len(w.loaded)
			w.loaded = append(w.loaded, idx)
			w.initial = append(w.initial, dataset.Arcs[idx])
		} else {
			w.pool = append(w.pool, idx)
		}
	}
	return w, nil
}

// Initial returns the starting snapshot as a fresh Dynamic graph.
func (w *Workload) Initial() *graph.Dynamic {
	g := graph.NewDynamic(w.dataset.N)
	for _, a := range w.initial {
		g.AddEdge(a.From, a.To, a.W)
	}
	return g
}

// InitialEdgeList returns the starting snapshot as an edge list (for
// tools that persist the split).
func (w *Workload) InitialEdgeList() *graph.EdgeList {
	return &graph.EdgeList{
		Name: w.dataset.Name + "-initial",
		N:    w.dataset.N,
		Arcs: append([]graph.Arc(nil), w.initial...),
	}
}

// NumVertices returns the vertex count of the underlying dataset.
func (w *Workload) NumVertices() int { return w.dataset.N }

// Remaining reports how many withheld edges are still available as future
// additions.
func (w *Workload) Remaining() int { return len(w.pool) }

// Loaded reports how many edges are currently loaded (initial plus additions
// minus deletions from the batches generated so far).
func (w *Workload) Loaded() int { return len(w.loaded) }

// NextBatch produces the next batch: AddsPerBatch additions drawn (without
// replacement) from the withheld pool followed by DelsPerBatch deletions
// sampling edges loaded *at the start of the batch*, so a batch never
// deletes an edge it just added (matching the paper's generation). It
// returns a short batch when either source runs dry.
func (w *Workload) NextBatch() []graph.Update {
	batch := make([]graph.Update, 0, w.cfg.AddsPerBatch+w.cfg.DelsPerBatch)
	// Edges loaded before this batch are eligible for deletion.
	delEligible := len(w.loaded)

	for i := 0; i < w.cfg.AddsPerBatch && len(w.pool) > 0; i++ {
		j := w.rng.Intn(len(w.pool))
		idx := w.pool[j]
		w.pool[j] = w.pool[len(w.pool)-1]
		w.pool = w.pool[:len(w.pool)-1]
		a := w.dataset.Arcs[idx]
		batch = append(batch, graph.Add(a.From, a.To, a.W))
		w.posIn[idx] = len(w.loaded)
		w.loaded = append(w.loaded, idx)
	}

	for i := 0; i < w.cfg.DelsPerBatch && delEligible > 0; i++ {
		j := w.rng.Intn(delEligible)
		idx := w.loaded[j]
		a := w.dataset.Arcs[idx]
		batch = append(batch, graph.Del(a.From, a.To, a.W))
		// Remove idx from loaded, keeping the eligible prefix compact.
		last := delEligible - 1
		w.swapLoaded(j, last)
		w.swapLoaded(last, len(w.loaded)-1)
		delete(w.posIn, idx)
		w.loaded = w.loaded[:len(w.loaded)-1]
		delEligible--
	}
	return batch
}

func (w *Workload) swapLoaded(i, j int) {
	if i == j {
		return
	}
	w.loaded[i], w.loaded[j] = w.loaded[j], w.loaded[i]
	w.posIn[w.loaded[i]] = i
	w.posIn[w.loaded[j]] = j
}

// Batches materialises the next k batches (convenience for the harness).
func (w *Workload) Batches(k int) [][]graph.Update {
	out := make([][]graph.Update, 0, k)
	for i := 0; i < k; i++ {
		b := w.NextBatch()
		if len(b) == 0 {
			break
		}
		out = append(out, b)
	}
	return out
}

// QueryPairs returns k deterministic (source, destination) pairs of distinct
// vertices, the paper's "randomly select 10 pairs of vertices" methodology.
// Pairs are drawn with a separate RNG stream so the pair selection does not
// perturb batch contents.
func (w *Workload) QueryPairs(k int) [][2]graph.VertexID {
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ 0x5ee0))
	n := w.dataset.N
	pairs := make([][2]graph.VertexID, 0, k)
	for len(pairs) < k {
		s := graph.VertexID(rng.Intn(n))
		d := graph.VertexID(rng.Intn(n))
		if s == d {
			continue
		}
		pairs = append(pairs, [2]graph.VertexID{s, d})
	}
	return pairs
}

// QueryPairsConnected returns k deterministic (source, destination) pairs
// where d is reachable from s on the *initial snapshot*. At reduced scale a
// uniformly random pair frequently spans disconnected regions and
// trivialises the query; the paper's million-scale graphs have giant
// components where random pairs are almost always connected, so connected
// sampling is the faithful small-scale analog (EXPERIMENTS.md). Sources
// with out-degree below 1 are re-drawn; if a source reaches fewer than two
// vertices it is skipped. Falls back to unconstrained pairs if the graph is
// too shredded to host k connected ones.
func (w *Workload) QueryPairsConnected(k int) [][2]graph.VertexID {
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ 0xc0de))
	g := w.Initial()
	n := w.dataset.N
	pairs := make([][2]graph.VertexID, 0, k)
	for attempts := 0; len(pairs) < k && attempts < 50*k; attempts++ {
		s := graph.VertexID(rng.Intn(n))
		if g.OutDegree(s) == 0 {
			continue
		}
		reach := graph.ReachableFrom(g, s)
		var cands []graph.VertexID
		for v, ok := range reach {
			if ok && graph.VertexID(v) != s {
				cands = append(cands, graph.VertexID(v))
			}
		}
		if len(cands) < 2 {
			continue
		}
		d := cands[rng.Intn(len(cands))]
		pairs = append(pairs, [2]graph.VertexID{s, d})
	}
	if len(pairs) < k {
		pairs = append(pairs, w.QueryPairs(k-len(pairs))...)
	}
	return pairs
}

// NextTargetedBatch builds an adversarial batch: it prefers updates whose
// edges touch the focus region (focus[v] == true), drawing each update with
// up to a bounded number of rejection-sampling attempts before falling back
// to a uniform draw. Contribution-driven scheduling is strongest when most
// updates are irrelevant to the query; targeted batches stress exactly that
// assumption (EXPERIMENTS.md sensitivity study). Counts follow the
// workload's configured batch sizes; bookkeeping matches NextBatch.
func (w *Workload) NextTargetedBatch(focus []bool, fraction float64) []graph.Update {
	const attempts = 32
	batch := make([]graph.Update, 0, w.cfg.AddsPerBatch+w.cfg.DelsPerBatch)
	delEligible := len(w.loaded)
	touches := func(idx int) bool {
		a := w.dataset.Arcs[idx]
		return focus[a.From] || focus[a.To]
	}

	for i := 0; i < w.cfg.AddsPerBatch && len(w.pool) > 0; i++ {
		j := w.rng.Intn(len(w.pool))
		if w.rng.Float64() < fraction {
			for try := 0; try < attempts && !touches(w.pool[j]); try++ {
				j = w.rng.Intn(len(w.pool))
			}
		}
		idx := w.pool[j]
		w.pool[j] = w.pool[len(w.pool)-1]
		w.pool = w.pool[:len(w.pool)-1]
		a := w.dataset.Arcs[idx]
		batch = append(batch, graph.Add(a.From, a.To, a.W))
		w.posIn[idx] = len(w.loaded)
		w.loaded = append(w.loaded, idx)
	}
	for i := 0; i < w.cfg.DelsPerBatch && delEligible > 0; i++ {
		j := w.rng.Intn(delEligible)
		if w.rng.Float64() < fraction {
			for try := 0; try < attempts && !touches(w.loaded[j]); try++ {
				j = w.rng.Intn(delEligible)
			}
		}
		idx := w.loaded[j]
		a := w.dataset.Arcs[idx]
		batch = append(batch, graph.Del(a.From, a.To, a.W))
		last := delEligible - 1
		w.swapLoaded(j, last)
		w.swapLoaded(last, len(w.loaded)-1)
		delete(w.posIn, idx)
		w.loaded = w.loaded[:len(w.loaded)-1]
		delEligible--
	}
	return batch
}

// Buffer accumulates individually arriving updates and emits a batch each
// time the configured threshold is reached — the paper's ingestion model
// ("buffers the continuous arriving updates until reaching an assigned
// threshold, e.g. 100K", §II-A). Engines consume the emitted batches; the
// Buffer is the seam between an update source (Kafka, socket, file tail)
// and the batched incremental computation.
type Buffer struct {
	threshold int
	pending   []graph.Update
}

// NewBuffer returns a Buffer emitting batches of the given threshold
// (minimum 1).
func NewBuffer(threshold int) *Buffer {
	if threshold < 1 {
		threshold = 1
	}
	return &Buffer{threshold: threshold}
}

// Offer appends one arriving update; when the threshold is reached it
// returns the full batch and resets (nil otherwise).
func (b *Buffer) Offer(up graph.Update) []graph.Update {
	b.pending = append(b.pending, up)
	if len(b.pending) < b.threshold {
		return nil
	}
	batch := b.pending
	b.pending = nil
	return batch
}

// Flush returns whatever is buffered (possibly empty) and resets — used at
// stream end or on a timeout policy.
func (b *Buffer) Flush() []graph.Update {
	batch := b.pending
	b.pending = nil
	return batch
}

// Pending reports the number of buffered updates.
func (b *Buffer) Pending() int { return len(b.pending) }
