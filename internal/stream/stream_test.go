package stream

import (
	"testing"

	"cisgraph/internal/graph"
)

func testDataset(t *testing.T) *graph.EdgeList {
	t.Helper()
	return graph.RMAT("sd", 8, 2000, graph.DefaultRMAT, 16, 77)
}

func TestSplitFraction(t *testing.T) {
	ds := testDataset(t)
	w, err := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 10, DelsPerBatch: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Loaded(), len(ds.Arcs)/2; got != want {
		t.Fatalf("loaded = %d, want %d", got, want)
	}
	if w.Loaded()+w.Remaining() != len(ds.Arcs) {
		t.Fatal("split does not partition the dataset")
	}
	g := w.Initial()
	if g.NumEdges() != w.Loaded() {
		t.Fatalf("Initial has %d edges, want %d", g.NumEdges(), w.Loaded())
	}
	if g.NumVertices() != ds.N {
		t.Fatalf("Initial has %d vertices, want %d", g.NumVertices(), ds.N)
	}
}

func TestConfigValidation(t *testing.T) {
	ds := testDataset(t)
	if _, err := New(ds, Config{LoadFraction: 0}); err == nil {
		t.Fatal("zero load fraction accepted")
	}
	if _, err := New(ds, Config{LoadFraction: 1.5}); err == nil {
		t.Fatal("load fraction > 1 accepted")
	}
	if _, err := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: -1}); err == nil {
		t.Fatal("negative batch size accepted")
	}
}

func TestBatchInvariants(t *testing.T) {
	ds := testDataset(t)
	cfg := Config{LoadFraction: 0.5, AddsPerBatch: 50, DelsPerBatch: 50, Seed: 9}
	w, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Initial()
	for b := 0; b < 5; b++ {
		batch := w.NextBatch()
		adds, dels := 0, 0
		addedNow := map[uint64]bool{}
		for _, up := range batch {
			k := uint64(up.From)<<32 | uint64(up.To)
			if up.Del {
				dels++
				if addedNow[k] {
					t.Fatalf("batch %d deletes an edge it just added: %v", b, up)
				}
				if _, ok := g.HasEdge(up.From, up.To); !ok {
					t.Fatalf("batch %d deletes absent edge %v", b, up)
				}
				g.RemoveEdge(up.From, up.To)
			} else {
				adds++
				if _, ok := g.HasEdge(up.From, up.To); ok {
					t.Fatalf("batch %d adds present edge %v", b, up)
				}
				g.AddEdge(up.From, up.To, up.W)
				addedNow[k] = true
			}
		}
		if adds != 50 || dels != 50 {
			t.Fatalf("batch %d: %d adds, %d dels; want 50/50", b, adds, dels)
		}
		if g.NumEdges() != w.Loaded() {
			t.Fatalf("batch %d: applied graph has %d edges, workload says %d", b, g.NumEdges(), w.Loaded())
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	ds := testDataset(t)
	cfg := Config{LoadFraction: 0.5, AddsPerBatch: 20, DelsPerBatch: 20, Seed: 4}
	w1, _ := New(ds, cfg)
	w2, _ := New(ds, cfg)
	for i := 0; i < 3; i++ {
		b1, b2 := w1.NextBatch(), w2.NextBatch()
		if len(b1) != len(b2) {
			t.Fatalf("batch %d length differs", i)
		}
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatalf("batch %d update %d: %v vs %v", i, j, b1[j], b2[j])
			}
		}
	}
}

func TestPoolExhaustion(t *testing.T) {
	ds := graph.Uniform("tiny", 10, 40, 4, 3)
	w, err := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 15, DelsPerBatch: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pool has 20 withheld edges; after two batches of 15 it must run dry.
	b1 := w.NextBatch()
	b2 := w.NextBatch()
	b3 := w.NextBatch()
	if len(b1) != 15 || len(b2) != 5 || len(b3) != 0 {
		t.Fatalf("batch sizes %d,%d,%d; want 15,5,0", len(b1), len(b2), len(b3))
	}
	if w.Remaining() != 0 {
		t.Fatalf("remaining = %d", w.Remaining())
	}
}

func TestBatchesHelper(t *testing.T) {
	ds := testDataset(t)
	w, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 5, DelsPerBatch: 5, Seed: 8})
	bs := w.Batches(3)
	if len(bs) != 3 {
		t.Fatalf("Batches(3) = %d batches", len(bs))
	}
	for i, b := range bs {
		if len(b) != 10 {
			t.Fatalf("batch %d has %d updates", i, len(b))
		}
	}
}

func TestQueryPairs(t *testing.T) {
	ds := testDataset(t)
	w, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 1, DelsPerBatch: 1, Seed: 10})
	pairs := w.QueryPairs(10)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("pair with identical endpoints: %v", p)
		}
		if int(p[0]) >= ds.N || int(p[1]) >= ds.N {
			t.Fatalf("pair out of range: %v", p)
		}
	}
	// Pair selection must not perturb batch generation.
	w2, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 1, DelsPerBatch: 1, Seed: 10})
	b2 := w2.NextBatch()
	b1 := w.NextBatch()
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("QueryPairs changed batch stream")
		}
	}
}

func TestDefaultConfigScaling(t *testing.T) {
	c := DefaultConfig(41_631_643, 1) // Orkut's edge count
	if c.AddsPerBatch < 45_000 || c.AddsPerBatch > 55_000 {
		t.Fatalf("paper-scale batch = %d, want ≈50K", c.AddsPerBatch)
	}
	small := DefaultConfig(100, 1)
	if small.AddsPerBatch < 1 {
		t.Fatal("tiny graphs must still get non-empty batches")
	}
}

func TestInitialEdgeList(t *testing.T) {
	ds := testDataset(t)
	w, _ := New(ds, Config{LoadFraction: 0.25, AddsPerBatch: 1, DelsPerBatch: 1, Seed: 6})
	el := w.InitialEdgeList()
	if el.N != ds.N || len(el.Arcs) != w.Loaded() {
		t.Fatalf("initial edge list N=%d M=%d", el.N, len(el.Arcs))
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryPairsConnected(t *testing.T) {
	ds := graph.RMAT("conn", 9, 4000, graph.DefaultRMAT, 8, 12)
	w, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 1, DelsPerBatch: 1, Seed: 12})
	pairs := w.QueryPairsConnected(5)
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	g := w.Initial()
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("degenerate pair %v", p)
		}
		reach := graph.ReachableFrom(g, p[0])
		if !reach[p[1]] {
			t.Fatalf("pair %v not connected on the initial snapshot", p)
		}
	}
	// Deterministic in the seed.
	w2, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 1, DelsPerBatch: 1, Seed: 12})
	again := w2.QueryPairsConnected(5)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("connected pair sampling not deterministic")
		}
	}
}

func TestQueryPairsConnectedFallback(t *testing.T) {
	// A graph of isolated edges cannot host 5 connected pairs from one
	// source with ≥2 reachable candidates; the fallback must still deliver
	// k pairs.
	el := &graph.EdgeList{Name: "shred", N: 10, Arcs: []graph.Arc{
		{From: 0, To: 1, W: 1}, {From: 2, To: 3, W: 1},
	}}
	w, _ := New(el, Config{LoadFraction: 1.0, AddsPerBatch: 0, DelsPerBatch: 1, Seed: 4})
	pairs := w.QueryPairsConnected(5)
	if len(pairs) != 5 {
		t.Fatalf("fallback failed: %d pairs", len(pairs))
	}
}

func TestNextTargetedBatchBiased(t *testing.T) {
	ds := graph.RMAT("tgt", 9, 4000, graph.DefaultRMAT, 8, 15)
	mk := func() (*Workload, []bool) {
		w, err := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 100, DelsPerBatch: 100, Seed: 15})
		if err != nil {
			t.Fatal(err)
		}
		focus := make([]bool, ds.N)
		for v := 0; v < ds.N/16; v++ { // focus on the low-ID (dense) region
			focus[v] = true
		}
		return w, focus
	}
	share := func(batch []graph.Update, focus []bool) float64 {
		hit := 0
		for _, up := range batch {
			if focus[up.From] || focus[up.To] {
				hit++
			}
		}
		return float64(hit) / float64(len(batch))
	}
	w0, focus := mk()
	uniform := share(w0.NextTargetedBatch(focus, 0), focus)
	w1, _ := mk()
	targeted := share(w1.NextTargetedBatch(focus, 0.9), focus)
	if targeted <= uniform {
		t.Fatalf("targeting ineffective: uniform %.2f, targeted %.2f", uniform, targeted)
	}
	if targeted < 0.5 {
		t.Fatalf("targeted share only %.2f", targeted)
	}
	// Bookkeeping must stay consistent with NextBatch semantics: the 100
	// deletions leave tracking entirely, the 100 additions moved pool→loaded.
	if w1.Loaded()+w1.Remaining() != len(ds.Arcs)-100 {
		t.Fatalf("targeted batch broke the loaded/pool accounting: %d + %d != %d - 100",
			w1.Loaded(), w1.Remaining(), len(ds.Arcs))
	}
}

func TestTargetedBatchStillValidUpdates(t *testing.T) {
	ds := graph.RMAT("tgtv", 8, 2000, graph.DefaultRMAT, 8, 16)
	w, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 50, DelsPerBatch: 50, Seed: 16})
	g := w.Initial()
	focus := make([]bool, ds.N)
	focus[0] = true
	batch := w.NextTargetedBatch(focus, 0.8)
	for _, up := range batch {
		if up.Del {
			if _, ok := g.HasEdge(up.From, up.To); !ok {
				t.Fatalf("targeted deletion of absent edge %v", up)
			}
			g.RemoveEdge(up.From, up.To)
		} else {
			if !g.AddEdge(up.From, up.To, up.W) {
				t.Fatalf("targeted addition of present edge %v", up)
			}
		}
	}
}

func TestBufferThreshold(t *testing.T) {
	b := NewBuffer(3)
	if got := b.Offer(graph.Add(0, 1, 1)); got != nil {
		t.Fatal("emitted below threshold")
	}
	if got := b.Offer(graph.Add(1, 2, 1)); got != nil {
		t.Fatal("emitted below threshold")
	}
	batch := b.Offer(graph.Del(0, 1, 1))
	if len(batch) != 3 {
		t.Fatalf("batch = %v", batch)
	}
	if b.Pending() != 0 {
		t.Fatal("buffer not reset after emit")
	}
	// Order preserved.
	if batch[2].Del != true || batch[0].From != 0 {
		t.Fatalf("order lost: %v", batch)
	}
}

func TestBufferFlushAndMinimum(t *testing.T) {
	b := NewBuffer(0) // clamped to 1: every Offer emits
	if got := b.Offer(graph.Add(0, 1, 1)); len(got) != 1 {
		t.Fatalf("threshold-1 buffer must emit immediately: %v", got)
	}
	b2 := NewBuffer(10)
	b2.Offer(graph.Add(0, 1, 1))
	if got := b2.Flush(); len(got) != 1 {
		t.Fatalf("flush = %v", got)
	}
	if got := b2.Flush(); len(got) != 0 {
		t.Fatal("double flush must be empty")
	}
}

// TestBufferDrivesEngine: feeding an engine through the Buffer produces the
// same final answer as direct batch application.
func TestBufferDrivesEngine(t *testing.T) {
	ds := graph.RMAT("buf", 7, 700, graph.DefaultRMAT, 8, 33)
	w, _ := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 25, DelsPerBatch: 25, Seed: 33})
	batches := w.Batches(3)
	var flat []graph.Update
	for _, b := range batches {
		flat = append(flat, b...)
	}
	buf := NewBuffer(17) // deliberately misaligned with batch boundaries
	var rebatched [][]graph.Update
	for _, up := range flat {
		if out := buf.Offer(up); out != nil {
			rebatched = append(rebatched, out)
		}
	}
	if tail := buf.Flush(); len(tail) > 0 {
		rebatched = append(rebatched, tail)
	}
	total := 0
	for _, b := range rebatched {
		total += len(b)
	}
	if total != len(flat) {
		t.Fatalf("rebatching lost updates: %d of %d", total, len(flat))
	}
}
