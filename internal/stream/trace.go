package stream

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cisgraph/internal/graph"
)

// Batch-trace file format: a reproducible record of a workload's update
// batches, so an experiment can be replayed without regenerating it.
//
//	# batch <index> <numUpdates>
//	+ <from> <to> <weight>
//	- <from> <to> <weight>
//	...
//
// Lines starting with '#' open a new batch; '+' is an addition, '-' a
// deletion.

// WriteTrace writes batches in the trace format.
func WriteTrace(w io.Writer, batches [][]graph.Update) error {
	bw := bufio.NewWriter(w)
	for i, b := range batches {
		if _, err := fmt.Fprintf(bw, "# batch %d %d\n", i, len(b)); err != nil {
			return err
		}
		for _, up := range b {
			op := "+"
			if up.Del {
				op = "-"
			}
			if _, err := fmt.Fprintf(bw, "%s %d %d %g\n", op, up.From, up.To, up.W); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace file back into batches.
func ReadTrace(r io.Reader) ([][]graph.Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var batches [][]graph.Update
	var cur []graph.Update
	flush := func() {
		if cur != nil {
			batches = append(batches, cur)
			cur = nil
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			flush()
			cur = []graph.Update{}
			continue
		}
		var op string
		var from, to graph.VertexID
		var w float64
		if _, err := fmt.Sscan(line, &op, &from, &to, &w); err != nil {
			return nil, fmt.Errorf("trace line %d: %q: %w", lineNo, line, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("trace line %d: update before any batch header", lineNo)
		}
		switch op {
		case "+":
			cur = append(cur, graph.Add(from, to, w))
		case "-":
			cur = append(cur, graph.Del(from, to, w))
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q", lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return batches, nil
}
