package stream

import (
	"bytes"
	"strings"
	"testing"

	"cisgraph/internal/graph"
)

func TestTraceRoundTrip(t *testing.T) {
	ds := graph.RMAT("trace", 7, 600, graph.DefaultRMAT, 8, 9)
	w, err := New(ds, Config{LoadFraction: 0.5, AddsPerBatch: 20, DelsPerBatch: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batches := w.Batches(3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("round trip: %d batches, want %d", len(got), len(batches))
	}
	for i := range batches {
		if len(got[i]) != len(batches[i]) {
			t.Fatalf("batch %d: %d updates, want %d", i, len(got[i]), len(batches[i]))
		}
		for j := range batches[i] {
			if got[i][j] != batches[i][j] {
				t.Fatalf("batch %d update %d: %v vs %v", i, j, got[i][j], batches[i][j])
			}
		}
	}
}

func TestTraceEmptyBatchPreserved(t *testing.T) {
	batches := [][]graph.Update{{graph.Add(0, 1, 2)}, {}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[1]) != 0 {
		t.Fatalf("got %d batches (%v)", len(got), got)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"+ 0 1 2\n",              // update before header
		"# batch 0 1\n? 0 1 2\n", // unknown op
		"# batch 0 1\n+ x y z\n", // non-numeric
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := "# batch 0 2\n\n+ 0 1 2\n\n- 1 2 3\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 2 || !got[0][1].Del {
		t.Fatalf("parsed %v", got)
	}
}

// FuzzReadTrace hardens the batch-trace parser: arbitrary input either
// parses (and then survives a write/read round trip) or errors — no panics.
func FuzzReadTrace(f *testing.F) {
	f.Add("# batch 0 2\n+ 0 1 2\n- 1 2 3\n")
	f.Add("+ 0 1 2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, got); err != nil {
			t.Fatal(err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("round trip changed batch count %d→%d", len(got), len(again))
		}
	})
}
