// Package watch implements the answer-subscription hub (DESIGN.md §15): a
// fan-out point between the single commit pipeline and any number of
// subscribers that want to be told, per commit, which registered queries'
// answers changed — instead of polling /v1/answers and re-reading O(Q)
// state to find the handful of moved values.
//
// The hub is deliberately dumb about transport: the server's /v1/watch
// handler owns SSE/long-poll encoding; the hub owns subscription lifetime,
// per-subscriber bounded queues, and the slow-consumer protocol.
//
// Slow-consumer protocol: every send is non-blocking. A subscriber whose
// queue is full when a commit fans out is marked lost — its queued messages
// stay intact, but everything after the overflow is dropped until a resync
// marker fits in the queue. The marker tells the client its view has a gap:
// re-read the full answer state (GET /v1/answers), then resume applying
// deltas. This is safe because publication order is snapshot-first: by the
// time any subscriber sees a message for position P, /v1/answers already
// serves position >= P, so a re-read never loses the dropped changes.
package watch

import (
	"sync"
	"sync/atomic"

	"cisgraph/internal/algo"
)

// Event is one query whose answer changed in a commit.
type Event struct {
	// ID is the query's pool-global registration id.
	ID int
	// Value is the post-commit answer.
	Value algo.Value
}

// Msg is one queue entry delivered to a subscriber.
type Msg struct {
	// Pos is the global stream position after the commit (for deltas) or
	// the position the subscriber must re-read at (for resync markers).
	Pos uint64
	// TsNano is the commit's wall-clock stamp (UnixNano), taken by the
	// publisher; clients measure commit→delivery latency against it. Zero
	// on resync markers.
	TsNano int64
	// Resync marks a gap: the subscriber missed messages (queue overflow)
	// or the whole answer state was rebuilt (follower re-bootstrap). The
	// client must re-read /v1/answers before trusting further deltas.
	Resync bool
	// Events lists the subscriber-relevant answer changes, ascending ID.
	// Empty on resync markers. The slice is shared among subscribers with
	// the same view — receivers must not mutate it.
	Events []Event
}

// Hub fans commit deltas out to subscribers. One Hub serves one server
// (leader or follower); the commit pipeline is the only publisher.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Sub]struct{}
	closed bool

	// Monotonic stats, exported on /metrics.
	nSubs    atomic.Int64  // current subscriber count (gauge)
	delivers atomic.Uint64 // delta messages enqueued across all subscribers
	drops    atomic.Uint64 // messages dropped by the slow-consumer protocol
	resyncs  atomic.Uint64 // resync markers enqueued
}

// Sub is one subscription. Receive from C until it closes (hub shut down or
// Cancel called); call Cancel exactly once when done.
type Sub struct {
	// C delivers messages in commit order. Closed by Cancel/Close.
	C      chan Msg
	hub    *Hub
	filter func(id int) bool
	lost   bool // under hub.mu: overflowed; owes the client a resync marker
	done   bool // under hub.mu: channel closed (Cancel or hub Close)
}

// New builds an empty hub.
func New() *Hub {
	return &Hub{subs: make(map[*Sub]struct{})}
}

// Subscribe registers a subscriber with a queue of buf messages (min 1).
// filter selects the query ids this subscriber cares about; nil means all.
// Returns nil when the hub is closed (server draining).
func (h *Hub) Subscribe(buf int, filter func(id int) bool) *Sub {
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &Sub{C: make(chan Msg, buf), hub: h, filter: filter}
	h.subs[s] = struct{}{}
	h.nSubs.Add(1)
	return s
}

// Cancel removes the subscription and closes its channel. Idempotent; safe
// concurrently with Publish.
func (s *Sub) Cancel() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	delete(h.subs, s)
	h.nSubs.Add(-1)
	close(s.C)
}

// Publish fans one commit's answer changes out to every matching
// subscriber. events must be in ascending ID order (the pool's delta order);
// the hub slices it per filter. Callers publish AFTER the answer snapshot
// for pos is readable, so resync re-reads can never miss these changes.
func (h *Hub) Publish(pos uint64, tsNano int64, events []Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return
	}
	for s := range h.subs {
		ev := events
		if s.filter != nil {
			ev = filterEvents(events, s.filter)
			if len(ev) == 0 && !s.lost {
				continue // commit is invisible to this subscriber
			}
		}
		if s.lost {
			// Owes a resync; the pending marker supersedes these events
			// (the client's re-read covers them).
			h.trySend(s, Msg{Pos: pos, Resync: true})
			continue
		}
		if len(ev) == 0 {
			continue
		}
		h.trySend(s, Msg{Pos: pos, TsNano: tsNano, Events: ev})
	}
}

// ResyncAll marks every subscriber's view stale — used after a follower
// re-bootstrap rebuilds the whole answer state without a per-query delta.
// Subscribers whose marker does not fit stay lost and get it on a later
// publish.
func (h *Hub) ResyncAll(pos uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		s.lost = true
		h.trySend(s, Msg{Pos: pos, Resync: true})
	}
}

// trySend enqueues without blocking, running the slow-consumer protocol on
// overflow. Caller holds h.mu.
func (h *Hub) trySend(s *Sub, m Msg) {
	select {
	case s.C <- m:
		if m.Resync {
			s.lost = false
			h.resyncs.Add(1)
		} else {
			h.delivers.Add(1)
		}
	default:
		s.lost = true
		h.drops.Add(1)
	}
}

// Close shuts the hub down: every subscriber's channel closes after its
// queued messages drain, and future Subscribe calls return nil. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		if !s.done {
			s.done = true
			close(s.C)
		}
	}
	h.nSubs.Store(0)
	h.subs = map[*Sub]struct{}{}
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int64 { return h.nSubs.Load() }

// Delivered returns the cumulative delta messages enqueued.
func (h *Hub) Delivered() uint64 { return h.delivers.Load() }

// Dropped returns the cumulative messages dropped on slow consumers.
func (h *Hub) Dropped() uint64 { return h.drops.Load() }

// Resynced returns the cumulative resync markers enqueued.
func (h *Hub) Resynced() uint64 { return h.resyncs.Load() }

// filterEvents returns the subset of events matching f (shared prefix fast
// path: when everything matches, the original slice is returned unsliced).
func filterEvents(events []Event, f func(id int) bool) []Event {
	for i, e := range events {
		if !f(e.ID) {
			// First miss: copy the matching remainder.
			out := append([]Event(nil), events[:i]...)
			for _, e2 := range events[i+1:] {
				if f(e2.ID) {
					out = append(out, e2)
				}
			}
			return out
		}
	}
	return events
}
