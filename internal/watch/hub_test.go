package watch

import (
	"sort"
	"sync"
	"testing"
	"time"
)

func collect(s *Sub, n int, t *testing.T) []Msg {
	t.Helper()
	var out []Msg
	for len(out) < n {
		select {
		case m, ok := <-s.C:
			if !ok {
				t.Fatalf("channel closed after %d messages, want %d", len(out), n)
			}
			out = append(out, m)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out after %d messages, want %d", len(out), n)
		}
	}
	return out
}

func TestHubDeliversInCommitOrder(t *testing.T) {
	h := New()
	s := h.Subscribe(8, nil)
	h.Publish(1, 100, []Event{{ID: 0, Value: 1}})
	h.Publish(2, 200, []Event{{ID: 1, Value: 2}, {ID: 3, Value: 4}})
	got := collect(s, 2, t)
	if got[0].Pos != 1 || got[0].TsNano != 100 || len(got[0].Events) != 1 {
		t.Fatalf("first message %+v", got[0])
	}
	if got[1].Pos != 2 || len(got[1].Events) != 2 || got[1].Events[1].ID != 3 {
		t.Fatalf("second message %+v", got[1])
	}
	if h.Delivered() != 2 || h.Dropped() != 0 {
		t.Fatalf("delivered=%d dropped=%d", h.Delivered(), h.Dropped())
	}
	s.Cancel()
	if _, ok := <-s.C; ok {
		t.Fatal("channel still open after Cancel")
	}
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers=%d after cancel", h.Subscribers())
	}
}

func TestHubFilter(t *testing.T) {
	h := New()
	odd := h.Subscribe(8, func(id int) bool { return id%2 == 1 })
	all := h.Subscribe(8, nil)
	h.Publish(1, 0, []Event{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}})
	h.Publish(2, 0, []Event{{ID: 4}}) // invisible to odd
	h.Publish(3, 0, []Event{{ID: 5}})

	am := collect(all, 3, t)
	if len(am[0].Events) != 4 {
		t.Fatalf("all subscriber saw %d events in first commit", len(am[0].Events))
	}
	om := collect(odd, 2, t)
	if om[0].Pos != 1 || len(om[0].Events) != 2 || om[0].Events[0].ID != 1 || om[0].Events[1].ID != 3 {
		t.Fatalf("odd subscriber first message %+v", om[0])
	}
	if om[1].Pos != 3 || len(om[1].Events) != 1 || om[1].Events[0].ID != 5 {
		t.Fatalf("odd subscriber skipped-commit handling wrong: %+v", om[1])
	}
	odd.Cancel()
	all.Cancel()
}

// A subscriber that stops draining overflows its queue, loses messages, and
// is handed a resync marker as soon as there is room — after which deltas
// resume. Positions never go backwards and the marker precedes resumed
// deltas.
func TestHubSlowConsumerResync(t *testing.T) {
	h := New()
	s := h.Subscribe(2, nil)
	// Fill the queue (2), then overflow (3,4): both dropped, sub marked lost.
	for pos := uint64(1); pos <= 4; pos++ {
		h.Publish(pos, 0, []Event{{ID: int(pos)}})
	}
	if h.Dropped() != 2 {
		t.Fatalf("dropped=%d, want 2", h.Dropped())
	}
	// Drain one slot; the next publish must deliver a resync marker, NOT the
	// new delta (the re-read covers it).
	m1 := collect(s, 1, t)[0]
	if m1.Pos != 1 || m1.Resync {
		t.Fatalf("first drained message %+v", m1)
	}
	h.Publish(5, 0, []Event{{ID: 5}})
	got := collect(s, 2, t)
	if got[0].Pos != 2 || got[0].Resync {
		t.Fatalf("queued delta %+v", got[0])
	}
	if !got[1].Resync || got[1].Pos != 5 {
		t.Fatalf("expected resync marker at pos 5, got %+v", got[1])
	}
	if h.Resynced() != 1 {
		t.Fatalf("resyncs=%d, want 1", h.Resynced())
	}
	// After the marker, deltas flow again.
	h.Publish(6, 0, []Event{{ID: 6}})
	m := collect(s, 1, t)[0]
	if m.Resync || m.Pos != 6 {
		t.Fatalf("post-resync delta %+v", m)
	}
	s.Cancel()
}

func TestHubResyncAllAndClose(t *testing.T) {
	h := New()
	a := h.Subscribe(4, nil)
	b := h.Subscribe(4, nil)
	h.ResyncAll(7)
	for _, s := range []*Sub{a, b} {
		m := collect(s, 1, t)[0]
		if !m.Resync || m.Pos != 7 {
			t.Fatalf("resync-all message %+v", m)
		}
	}
	h.Publish(8, 0, []Event{{ID: 1}})
	h.Close()
	// Queued delta drains, then the channel closes.
	m := collect(a, 1, t)[0]
	if m.Pos != 8 {
		t.Fatalf("queued delta after close %+v", m)
	}
	if _, ok := <-a.C; ok {
		t.Fatal("channel open after Close")
	}
	if h.Subscribe(1, nil) != nil {
		t.Fatal("Subscribe succeeded on closed hub")
	}
	h.Close()  // idempotent
	a.Cancel() // idempotent with Close
	b.Cancel()
}

// Concurrent subscribe/cancel/publish must be race-free (run with -race) and
// every delivered message must be internally consistent.
func TestHubConcurrency(t *testing.T) {
	h := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Subscribe(4, func(id int) bool { return id%8 == g })
				for j := 0; j < 4; j++ {
					select {
					case m, ok := <-s.C:
						if ok && !m.Resync {
							for _, e := range m.Events {
								if e.ID%8 != g {
									t.Errorf("filter leak: id %d on subscriber %d", e.ID, g)
								}
							}
						}
					case <-time.After(time.Millisecond):
					}
				}
				s.Cancel()
			}
		}(g)
	}
	events := make([]Event, 64)
	for i := range events {
		events[i] = Event{ID: i}
	}
	for pos := uint64(1); pos <= 2000; pos++ {
		h.Publish(pos, int64(pos), events)
	}
	close(stop)
	wg.Wait()
	h.Close()
}

// Fan-out latency: with 1000 subscribers draining concurrently, the p99
// commit→receive latency of a delta must stay under 5ms (ISSUE 8 acceptance
// bar). The publisher stamps TsNano; each subscriber measures on receipt.
func TestHubFanoutLatency1k(t *testing.T) {
	const subs = 1000
	const commits = 50
	h := New()
	lat := make([][]time.Duration, subs)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	for i := 0; i < subs; i++ {
		s := h.Subscribe(commits+8, nil)
		wg.Add(1)
		ready.Add(1)
		go func(i int, s *Sub) {
			defer wg.Done()
			ready.Done()
			for m := range s.C {
				if !m.Resync {
					lat[i] = append(lat[i], time.Duration(time.Now().UnixNano()-m.TsNano))
				}
			}
		}(i, s)
	}
	ready.Wait()
	// A handful of deliberately slow consumers must not stall the rest:
	// subscribe a few with tiny queues that nobody drains.
	for i := 0; i < 10; i++ {
		h.Subscribe(1, nil)
	}
	for pos := uint64(1); pos <= commits; pos++ {
		h.Publish(pos, time.Now().UnixNano(), []Event{{ID: 1, Value: float64(pos)}})
		time.Sleep(time.Millisecond)
	}
	h.Close()
	wg.Wait()

	var all []time.Duration
	for i := range lat {
		all = append(all, lat[i]...)
	}
	if len(all) < subs*commits/2 {
		t.Fatalf("only %d deliveries recorded, want >= %d", len(all), subs*commits/2)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	p50 := all[len(all)/2]
	p99 := all[len(all)*99/100]
	t.Logf("fan-out latency across %d deliveries: p50=%v p99=%v max=%v",
		len(all), p50, p99, all[len(all)-1])
	// 5ms is the acceptance bar; -race slows everything, so give it 10x
	// headroom there by keying on the measured p50 staying sane too.
	if p99 > 50*time.Millisecond {
		t.Fatalf("p99 fan-out latency %v implausibly slow", p99)
	}
	if testing.Short() {
		return
	}
	if raceEnabled {
		return // timing bar enforced only on the non-instrumented build
	}
	if p99 > 5*time.Millisecond {
		t.Errorf("p99 fan-out latency %v exceeds 5ms bar (p50=%v)", p99, p50)
	}
}
