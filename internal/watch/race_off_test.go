//go:build !race

package watch

// raceEnabled lets timing-sensitive tests relax their bars under the race
// detector's ~10x slowdown.
const raceEnabled = false
