#!/usr/bin/env bash
# Failover chaos smoke: a three-node cluster (leader + two promotable
# followers) survives a SIGKILL of the leader with an exactly-once binary
# ingest session live on the wire. Asserts the whole §17 protocol from the
# outside: explicit /v1/admin/promote, epoch monotonicity in /healthz and
# /metrics and the X-CISGraph-Epoch replication header, loadgen's CGBIN/2
# session resuming onto the new leader without duplicates or loss, JSON
# writes following 421 Location handoffs, and the deposed leader rejoining
# as a fenced follower — with every node's /v1/answers byte-identical at
# the end.
#
# Usage: scripts/chaos_failover.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
PORT="${FAILOVER_PORT:-8394}"
N0="127.0.0.1:$PORT"
N1="127.0.0.1:$((PORT + 1))"
N2="127.0.0.1:$((PORT + 2))"
B0="127.0.0.1:$((PORT + 3))"
B1="127.0.0.1:$((PORT + 4))"
B2="127.0.0.1:$((PORT + 5))"
PEERS="http://$N0,http://$N1,http://$N2"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

wait_healthy() { # addr
    for _ in $(seq 1 150); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never became healthy" >&2
    return 1
}

healthz_num() { # addr field -> numeric value
    curl -fsS "http://$1/healthz" | grep -o "\"$2\":[0-9]*" | head -1 | cut -d: -f2
}

wait_role() { # addr role
    for _ in $(seq 1 200); do
        if curl -fsS "http://$1/healthz" 2>/dev/null | grep -q "\"role\":\"$2\""; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: $1 never reached role $2" >&2
    curl -fsS "http://$1/healthz" >&2 || true
    return 1
}

wait_converged() { # follower-addr leader-batches
    for _ in $(seq 1 300); do
        if [[ "$(healthz_num "$1" batches)" == "$2" ]]; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: $1 never converged to $2 batches" >&2
    curl -fsS "http://$1/healthz" >&2 || true
    return 1
}

echo "== build"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/cisgraphd" ./cmd/cisgraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== generate dataset + stream"
"$WORK/datagen" -gen rmat -scale 10 -out "$WORK/g.bel" -split -batches 64 -seed 7

start_node() { # idx extra-args...
    local i=$1 addr bin
    shift
    case "$i" in
        0) addr=$N0 bin=$B0 ;;
        1) addr=$N1 bin=$B1 ;;
        2) addr=$N2 bin=$B2 ;;
    esac
    "$WORK/cisgraphd" -addr "$addr" -binary-addr "$bin" -file "$WORK/g.bel.initial" \
        -wal "$WORK/wal$i" -checkpoint "$WORK/ckpt$i" -checkpoint-every 4 \
        -batch-size 64 -batch-wait 5ms -repl-longpoll 500ms \
        -peers "$PEERS" -advertise "http://$addr" \
        -promote-on-leader-loss -promote-after 1s \
        -sync-followers 1 -sync-ack-timeout 2s "$@" \
        >>"$WORK/node$i.log" 2>&1 &
    eval "PID$i=$!"
    PIDS+=("$!")
}

echo "== start leader + 2 promotable followers"
start_node 0
wait_healthy "$N0"
start_node 1 -follow "http://$N0"
start_node 2 -follow "http://$N0"
wait_healthy "$N1"
wait_healthy "$N2"

echo "== phase 1: register queries everywhere, stream a CGBIN/2 session,"
echo "   cross-check both followers against the leader"
"$WORK/loadgen" -addr "http://$N0" -replicas "http://$N1,http://$N2" \
    -proto binary -session 51966 -binary-addrs "$B0,$B1,$B2" -window 8 \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -queries 4 -limit 800 -post-size 32
E0=$(healthz_num "$N0" epoch)
echo "   leader at epoch $E0"

echo "== phase 2 in background, then SIGKILL the leader mid-stream"
"$WORK/loadgen" -addr "http://$N1" -proto binary -session 51966 \
    -binary-addrs "$B0,$B1,$B2" -window 8 -readers 0 \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -offset 800 -limit 1100 -rate 600 -post-size 32 \
    -json "$WORK/phase2.json" >"$WORK/phase2.out" 2>&1 &
LG_PID=$!
PIDS+=("$LG_PID")
sleep 0.6
kill -9 "$PID0"
wait "$PID0" 2>/dev/null || true

echo "== promote follower 1"
PROMOTE=$(curl -fsS -X POST "http://$N1/v1/admin/promote")
echo "   $PROMOTE"
echo "$PROMOTE" | grep -q '"promoted":true' \
    || { echo "FAIL: promote did not promote"; exit 1; }
wait_role "$N1" leader
E1=$(healthz_num "$N1" epoch)
[[ "$E1" -gt "$E0" ]] \
    || { echo "FAIL: epoch did not advance on promotion ($E0 -> $E1)"; exit 1; }
curl -fsS "http://$N1/metrics" | grep -q "^cisgraph_epoch $E1\$" \
    || { echo "FAIL: cisgraph_epoch gauge != $E1"; curl -fsS "http://$N1/metrics" | grep cisgraph_epoch; exit 1; }
curl -fsSi "http://$N1/v1/repl/segments" | grep -qi "^X-CISGraph-Epoch: $E1" \
    || { echo "FAIL: replication response missing X-CISGraph-Epoch: $E1"; exit 1; }
echo "   epoch $E0 -> $E1, fenced in /metrics and replication headers"

echo "== phase-2 session must finish exactly-once on the new leader"
if ! wait "$LG_PID"; then
    echo "FAIL: phase-2 loadgen failed"; cat "$WORK/phase2.out"; exit 1
fi
grep -q '"binary_reconnects"' "$WORK/phase2.json" \
    || { echo "FAIL: session finished without reconnecting (kill landed too late?)"; cat "$WORK/phase2.out"; exit 1; }
grep 'failover:' "$WORK/phase2.out" || true

echo "== phase 3: JSON writes at a follower must follow 421 Location handoffs"
for _ in $(seq 1 100); do  # wait until N2 has located the new leader
    curl -fsS "http://$N2/healthz" | grep -q "\"leader\":\"http://$N1\"" && break
    sleep 0.1
done
"$WORK/loadgen" -addr "http://$N2" -proto json \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -offset 1900 -post-size 32 -json "$WORK/phase3.json" | tee "$WORK/phase3.out"
grep -q '"redirects"' "$WORK/phase3.json" \
    || { echo "FAIL: no 421 redirect was followed"; exit 1; }

echo "== deposed leader rejoins and must demote to follower (epoch fence)"
start_node 0 -resume
wait_healthy "$N0"
wait_role "$N0" follower
echo "   node 0 back as follower"

echo "== converge + cross-check: every node serves byte-identical answers"
LEADER_BATCHES=$(healthz_num "$N1" batches)
wait_converged "$N0" "$LEADER_BATCHES"
wait_converged "$N2" "$LEADER_BATCHES"
curl -fsS "http://$N1/v1/answers" >"$WORK/ans1.json"
curl -fsS "http://$N0/v1/answers" >"$WORK/ans0.json"
curl -fsS "http://$N2/v1/answers" >"$WORK/ans2.json"
cmp -s "$WORK/ans1.json" "$WORK/ans0.json" \
    || { echo "FAIL: rejoined node 0 answers differ from the leader"; exit 1; }
cmp -s "$WORK/ans1.json" "$WORK/ans2.json" \
    || { echo "FAIL: follower 2 answers differ from the leader"; exit 1; }

echo "== OK: leader SIGKILLed mid-session; epoch $E0 -> $E1 fenced the deposed"
echo "   leader out, the CGBIN/2 session resumed exactly-once, JSON writes"
echo "   followed the 421 handoff, and all 3 nodes serve identical answers"
echo "   reports: $WORK/phase2.json $WORK/phase3.json"
