#!/usr/bin/env bash
# Crash-loop chaos harness: repeatedly SIGKILL a live cisgraphd mid-ingest,
# restart it with -resume, and verify after every restart that the served
# answers are identical to an offline replay of the durable prefix
# (checkpoint + segmented WAL), via loadgen -verify-durable.
#
# SIGKILL means no drain runs: torn WAL tails, stranded checkpoint temp
# files and half-finished retention are all fair game — every cycle must
# absorb whatever the previous kill left behind.
#
# Usage: scripts/chaos_loop.sh [cycles] [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
CYCLES="${1:-5}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
ADDR="127.0.0.1:${CHAOS_PORT:-8373}"
DAEMON_PID=""
LOADGEN_PID=""

cleanup() {
    for pid in "$DAEMON_PID" "$LOADGEN_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/cisgraphd" ./cmd/cisgraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== generate dataset + stream"
"$WORK/datagen" -gen rmat -scale 9 -out "$WORK/g.bel" -split -batches 64 -seed 7

# Small segments and frequent checkpoints so every cycle exercises segment
# rolls, retention, and recovery across both artefacts.
start_daemon() {
    "$WORK/cisgraphd" -addr "$ADDR" -file "$WORK/g.bel.initial" \
        -wal "$WORK/srv.wal" -wal-segment-bytes 4096 \
        -checkpoint "$WORK/srv.ckpt" -checkpoint-every 4 \
        -batch-size 32 -batch-wait 5ms "$@" \
        >>"$WORK/daemon.log" 2>&1 &
    DAEMON_PID=$!
}

verify_durable() {
    "$WORK/loadgen" -addr "http://$ADDR" -verify-durable \
        -wal "$WORK/srv.wal" -checkpoint "$WORK/srv.ckpt" \
        -initial "$WORK/g.bel.initial"
}

CHUNK=200

echo "== cycle 0: fresh daemon, register queries, first ingest burst"
start_daemon -queries "3:99,0:7,12:45,8:90"
"$WORK/loadgen" -addr "http://$ADDR" -trace "$WORK/g.bel.batches" \
    -initial "$WORK/g.bel.initial" -limit "$CHUNK" -post-size 32 -readers 0

for ((cycle = 1; cycle <= CYCLES; cycle++)); do
    echo "== cycle $cycle: SIGKILL mid-ingest"
    # Background poster: paced so the kill reliably lands mid-replay. It
    # dies with a connection error when the daemon does — expected.
    "$WORK/loadgen" -addr "http://$ADDR" -trace "$WORK/g.bel.batches" \
        -initial "$WORK/g.bel.initial" -offset "$CHUNK" -post-size 32 \
        -rate 4000 -readers 0 >/dev/null 2>&1 &
    LOADGEN_PID=$!
    sleep 0.15
    kill -9 "$DAEMON_PID"
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
    wait "$LOADGEN_PID" 2>/dev/null || true
    LOADGEN_PID=""

    echo "   restart with -resume, verify served answers == durable replay"
    start_daemon -resume
    verify_durable
done

echo "== final: SIGTERM drain and last durable check"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
start_daemon -resume
verify_durable
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

SEGMENTS=$(ls "$WORK/srv.wal" | wc -l)
echo "== OK: $CYCLES SIGKILL cycles survived, answers identical to durable replay each time ($SEGMENTS WAL segments retained)"
