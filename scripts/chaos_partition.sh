#!/usr/bin/env bash
# Partition/failover chaos harness: a leader, a follower on a direct link,
# and a follower connected through replproxy (a fault-injecting TCP relay).
# Cycles rotate three failure modes mid-ingest — SIGKILL the leader and
# restart it with -resume, SIGSTOP/SIGCONT it, and drop the proxied link via
# SIGUSR1/SIGUSR2. After every heal, both followers must drain their
# replication lag to zero and serve answers identical to the leader
# (loadgen -replicas cross-check); at the end the leader's own answers are
# verified against an offline replay of its durable prefix
# (loadgen -verify-durable).
#
# Usage: scripts/chaos_partition.sh [cycles] [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
CYCLES="${1:-5}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
BASE_PORT="${CHAOS_REPL_PORT:-8378}"
LEADER="127.0.0.1:$BASE_PORT"
FOL_A="127.0.0.1:$((BASE_PORT + 1))"
FOL_B="127.0.0.1:$((BASE_PORT + 2))"
PROXY="127.0.0.1:$((BASE_PORT + 3))"
LEADER_PID=""
PROXY_PID=""
PIDS=()

cleanup() {
    for pid in "$LEADER_PID" "$PROXY_PID" "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -CONT "$pid" 2>/dev/null || true
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

wait_healthy() { # addr
    for _ in $(seq 1 150); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never became healthy" >&2
    return 1
}

wait_caught_up() { # follower addr
    for _ in $(seq 1 600); do
        if curl -fsS "http://$1/healthz" 2>/dev/null | grep -q '"lag_batches":0'; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: follower $1 never drained its replication lag" >&2
    curl -fsS "http://$1/healthz" >&2 || true
    return 1
}

echo "== build"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/cisgraphd" ./cmd/cisgraphd
go build -o "$WORK/loadgen" ./cmd/loadgen
go build -o "$WORK/replproxy" ./cmd/replproxy

echo "== generate dataset + stream"
"$WORK/datagen" -gen rmat -scale 9 -out "$WORK/g.bel" -split -batches 64 -seed 7

start_leader() {
    "$WORK/cisgraphd" -addr "$LEADER" -file "$WORK/g.bel.initial" \
        -wal "$WORK/srv.wal" -wal-segment-bytes 4096 \
        -checkpoint "$WORK/srv.ckpt" -checkpoint-every 4 \
        -batch-size 32 -batch-wait 5ms -repl-longpoll 500ms "$@" \
        >>"$WORK/leader.log" 2>&1 &
    LEADER_PID=$!
}

echo "== start leader, fault proxy, and 2 followers (B rides the proxy)"
start_leader
wait_healthy "$LEADER"
"$WORK/replproxy" -listen "$PROXY" -target "$LEADER" >>"$WORK/proxy.log" 2>&1 &
PROXY_PID=$!
for spec in "$FOL_A http://$LEADER" "$FOL_B http://$PROXY"; do
    set -- $spec
    "$WORK/cisgraphd" -addr "$1" -file "$WORK/g.bel.initial" \
        -follow "$2" -repl-longpoll 500ms -repl-seed 9 \
        >>"$WORK/followers.log" 2>&1 &
    PIDS+=("$!")
done
wait_healthy "$FOL_A"
wait_healthy "$FOL_B"

CHUNK=150
ingest_and_crosscheck() { # offset [extra loadgen flags...]
    local off=$1
    shift
    "$WORK/loadgen" -addr "http://$LEADER" -replicas "http://$FOL_A,http://$FOL_B" \
        -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
        -offset "$off" -limit "$CHUNK" -post-size 32 -readers 1 "$@"
}

# Registration is not WAL-shipped: loadgen registers the same pairs on the
# leader and on every replica, in the same order, so ids line up everywhere.
echo "== cycle 0: register queries everywhere, baseline ingest + cross-check"
ingest_and_crosscheck 0 -queries 4

for ((cycle = 1; cycle <= CYCLES; cycle++)); do
    case $((cycle % 3)) in
    1) MODE="SIGKILL leader + resume" ;;
    2) MODE="SIGSTOP/SIGCONT leader" ;;
    0) MODE="drop proxied link" ;;
    esac
    echo "== cycle $cycle: $MODE mid-ingest"

    # Background poster keeps updates in flight while the fault lands. It
    # may die with a connection error when the leader does — expected.
    "$WORK/loadgen" -addr "http://$LEADER" -trace "$WORK/g.bel.batches" \
        -initial "$WORK/g.bel.initial" -offset $((CHUNK * cycle)) -limit "$CHUNK" \
        -post-size 32 -rate 4000 -readers 0 >/dev/null 2>&1 &
    POSTER=$!
    sleep 0.15

    case $((cycle % 3)) in
    1)
        kill -9 "$LEADER_PID"
        wait "$LEADER_PID" 2>/dev/null || true
        LEADER_PID=""
        sleep 0.3
        start_leader -resume
        wait_healthy "$LEADER"
        ;;
    2)
        kill -STOP "$LEADER_PID"
        sleep 0.5
        kill -CONT "$LEADER_PID"
        ;;
    0)
        kill -USR1 "$PROXY_PID" # partition follower B
        sleep 0.5
        kill -USR2 "$PROXY_PID" # heal
        ;;
    esac
    wait "$POSTER" 2>/dev/null || true

    echo "   heal: converge both followers, cross-check against the leader"
    wait_caught_up "$FOL_A"
    wait_caught_up "$FOL_B"
    ingest_and_crosscheck $((CHUNK * (cycle + 1)))
done

echo "== final: leader answers == offline replay of its durable prefix"
"$WORK/loadgen" -addr "http://$LEADER" -verify-durable \
    -wal "$WORK/srv.wal" -checkpoint "$WORK/srv.ckpt" \
    -initial "$WORK/g.bel.initial"

echo "== OK: $CYCLES partition/failover cycles survived; followers matched the leader after every heal"
