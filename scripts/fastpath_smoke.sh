#!/usr/bin/env bash
# Fast-path smoke test: the serve_smoke.sh scenario over the CGBIN/1 binary
# ingest protocol — generate a small dataset, stream it through a live
# cisgraphd's per-update fast path in two halves with a SIGTERM drain +
# checkpoint/WAL resume in between, and verify the served answers are
# identical to an offline engine over the same stream (loadgen -verify).
# Exercises the framed wire protocol, group-committed WAL records, and the
# fast path's restart durability end to end.
#
# Usage: scripts/fastpath_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
ADDR="127.0.0.1:${SMOKE_PORT:-8372}"
BIN_ADDR="127.0.0.1:${SMOKE_BIN_PORT:-8373}"
DAEMON_PID=""

cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/cisgraphd" ./cmd/cisgraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== generate dataset + stream (~1.1k updates across 64 batches)"
"$WORK/datagen" -gen rmat -scale 9 -out "$WORK/g.bel" -split -batches 64 -seed 7

start_daemon() {
    "$WORK/cisgraphd" -addr "$ADDR" -binary-addr "$BIN_ADDR" \
        -file "$WORK/g.bel.initial" \
        -wal "$WORK/srv.wal" -checkpoint "$WORK/srv.ckpt" \
        -batch-size 64 -batch-wait 5ms "$@" &
    DAEMON_PID=$!
}

echo "== phase 1: first 600 updates over the binary fast path"
start_daemon
"$WORK/loadgen" -addr "http://$ADDR" -proto binary -binary-addr "$BIN_ADDR" \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -queries 4 -limit 600 -post-size 48

echo "== SIGTERM drain"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "== phase 2: resume from checkpoint + WAL, stream the rest, verify"
start_daemon -resume
"$WORK/loadgen" -addr "http://$ADDR" -proto binary -binary-addr "$BIN_ADDR" \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -offset 600 -post-size 48 \
    -verify -json "$WORK/loadgen.json"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

echo "== OK: fast-path answers match the offline engine across drain + restart"
echo "   report: $WORK/loadgen.json"
