#!/usr/bin/env bash
# Replication smoke test: one leader, two WAL-shipping read replicas.
# Streams a trace through the leader while loadgen fans reads across the
# replicas and cross-checks every follower answer against the leader, then
# SIGKILLs the leader and asserts the followers keep serving reads — with
# staleness surfaced in headers and /healthz — until the leader resumes and
# they converge again.
#
# Usage: scripts/repl_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
LEADER="127.0.0.1:${REPL_PORT:-8374}"
FOL_A="127.0.0.1:$((${REPL_PORT:-8374} + 1))"
FOL_B="127.0.0.1:$((${REPL_PORT:-8374} + 2))"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

wait_healthy() { # addr
    for _ in $(seq 1 150); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never became healthy" >&2
    return 1
}

wait_caught_up() { # follower addr
    for _ in $(seq 1 300); do
        if curl -fsS "http://$1/healthz" 2>/dev/null | grep -q '"lag_batches":0'; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: follower $1 never drained its replication lag" >&2
    curl -fsS "http://$1/healthz" >&2 || true
    return 1
}

echo "== build"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/cisgraphd" ./cmd/cisgraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== generate dataset + stream"
"$WORK/datagen" -gen rmat -scale 9 -out "$WORK/g.bel" -split -batches 64 -seed 7

start_leader() {
    "$WORK/cisgraphd" -addr "$LEADER" -file "$WORK/g.bel.initial" \
        -wal "$WORK/srv.wal" -checkpoint "$WORK/srv.ckpt" -checkpoint-every 4 \
        -batch-size 64 -batch-wait 5ms -repl-longpoll 500ms "$@" \
        >>"$WORK/leader.log" 2>&1 &
    LEADER_PID=$!
    PIDS+=("$LEADER_PID")
}

echo "== start leader + 2 followers"
start_leader
wait_healthy "$LEADER"
for fol in "$FOL_A" "$FOL_B"; do
    "$WORK/cisgraphd" -addr "$fol" -file "$WORK/g.bel.initial" \
        -follow "http://$LEADER" -repl-longpoll 500ms -max-staleness 2s \
        >>"$WORK/followers.log" 2>&1 &
    PIDS+=("$!")
done
wait_healthy "$FOL_A"
wait_healthy "$FOL_B"

echo "== epoch fencing surfaced: /healthz field + replication header"
curl -fsS "http://$LEADER/healthz" | grep -q '"epoch":' \
    || { echo "FAIL: /healthz does not surface the leadership epoch"; curl -fsS "http://$LEADER/healthz"; exit 1; }
curl -fsSi "http://$LEADER/v1/repl/segments" | grep -qi '^X-CISGraph-Epoch:' \
    || { echo "FAIL: replication response missing X-CISGraph-Epoch"; exit 1; }

echo "== phase 1: stream against the leader, reads fanned across replicas,"
echo "   then cross-check every follower answer against the leader"
"$WORK/loadgen" -addr "http://$LEADER" -replicas "http://$FOL_A,http://$FOL_B" \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -queries 4 -limit 600 -post-size 48

echo "== failover: SIGKILL the leader, followers must keep serving reads"
kill -9 "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
sleep 1
HDRS=$(curl -fsS -D - -o /dev/null "http://$FOL_A/v1/answers")
echo "$HDRS" | grep -qi '^X-CISGraph-Role: follower' \
    || { echo "FAIL: follower answer without role header"; echo "$HDRS"; exit 1; }
echo "$HDRS" | grep -qi '^X-CISGraph-Staleness:' \
    || { echo "FAIL: follower answer without staleness header"; echo "$HDRS"; exit 1; }
echo "   followers still answer, staleness header present"

echo "== staleness bound: wait out -max-staleness, expect degraded healthz"
sleep 2.5
curl -fsS "http://$FOL_B/healthz" | grep -q '"status":"degraded"' \
    || { echo "FAIL: follower not degraded after exceeding -max-staleness"; curl -fsS "http://$FOL_B/healthz"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-CISGraph-Max-Staleness: 100ms' "http://$FOL_B/v1/answers")
[[ "$CODE" == 503 ]] || { echo "FAIL: bounded-staleness read returned $CODE, want 503"; exit 1; }
echo "   degraded surfaced, bounded-staleness read refused with 503"

echo "== heal: restart leader with -resume, stream the rest, re-cross-check"
start_leader -resume
wait_healthy "$LEADER"
wait_caught_up "$FOL_A"
wait_caught_up "$FOL_B"
"$WORK/loadgen" -addr "http://$LEADER" -replicas "http://$FOL_A,http://$FOL_B" \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -offset 600 -post-size 48 -json "$WORK/loadgen.json"

echo "== writes stay misdirected on followers"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"updates":[{"op":"add","from":0,"to":1,"w":1}]}' "http://$FOL_A/v1/updates")
[[ "$CODE" == 421 ]] || { echo "FAIL: follower write returned $CODE, want 421"; exit 1; }

echo "== OK: replicas converged through a leader crash; every follower answer matched the leader"
echo "   report: $WORK/loadgen.json"
