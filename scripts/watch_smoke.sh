#!/usr/bin/env bash
# Watch smoke test: the /v1/watch answer-subscription subsystem end to end —
# generate a small dataset, serve it with cisgraphd, and drive the stream
# with loadgen while 16 SSE subscribers fold the pushed deltas into private
# views that must converge onto the polled /v1/answers (and the whole stream
# must verify against an offline engine). Then exercise the raw wire: an SSE
# subscription must open with an init event, a stale long-poll resume must be
# told to resync, the watch metric families must be exported, and a SIGTERM
# with a live subscriber attached must drain promptly (the shutdown hook ends
# watch streams; they must not pin the HTTP server to its deadline) while the
# subscriber receives a clean bye event.
#
# Usage: scripts/watch_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
ADDR="127.0.0.1:${SMOKE_PORT:-8372}"
DAEMON_PID=""
CURL_PID=""

cleanup() {
    for pid in "$CURL_PID" "$DAEMON_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/cisgraphd" ./cmd/cisgraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== generate dataset + stream (~1.1k updates across 64 batches)"
"$WORK/datagen" -gen rmat -scale 9 -out "$WORK/g.bel" -split -batches 64 -seed 7

echo "== start cisgraphd with watch limits"
"$WORK/cisgraphd" -addr "$ADDR" -file "$WORK/g.bel.initial" \
    -batch-size 64 -batch-wait 5ms -watch-queue 32 -max-watchers 64 &
DAEMON_PID=$!

echo "== replay with 16 SSE subscribers riding along"
"$WORK/loadgen" -addr "http://$ADDR" \
    -trace "$WORK/g.bel.batches" -initial "$WORK/g.bel.initial" \
    -queries 16 -watch 16 -post-size 48 -verify -json "$WORK/loadgen.json"

grep -q '"watch_checked"' "$WORK/loadgen.json" \
    || { echo "FAIL: loadgen report carries no watch cross-check"; cat "$WORK/loadgen.json"; exit 1; }

echo "== raw SSE handshake: init event with the current position"
curl -fsS -N --max-time 2 "http://$ADDR/v1/watch" >"$WORK/sse_init.txt" || true
grep -q '^event: init' "$WORK/sse_init.txt" \
    || { echo "FAIL: no init event on /v1/watch"; cat "$WORK/sse_init.txt"; exit 1; }

echo "== stale long-poll resume must be told to resync"
curl -fsS "http://$ADDR/v1/watch?mode=poll&from=0&wait=1s" | grep -q '"resync":true' \
    || { echo "FAIL: ?mode=poll&from=0 did not demand a resync"; exit 1; }

echo "== watch metric families exported"
METRICS=$(curl -fsS "http://$ADDR/metrics")
for fam in cisgraph_watch_subscribers cisgraph_watch_deltas cisgraph_watch_drops cisgraph_watch_resyncs; do
    grep -q "^$fam" <<<"$METRICS" \
        || { echo "FAIL: $fam missing from /metrics"; exit 1; }
done

echo "== SIGTERM with a live subscriber: drain must not hang, stream must say bye"
curl -fsS -N --max-time 30 "http://$ADDR/v1/watch" >"$WORK/sse_drain.txt" &
CURL_PID=$!
sleep 0.5 # let the subscription land before the drain begins
kill -TERM "$DAEMON_PID"
DEADLINE=$((SECONDS + 15))
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    if ((SECONDS >= DEADLINE)); then
        echo "FAIL: daemon still running ${DEADLINE}s after SIGTERM (watch stream pinned the drain?)"
        exit 1
    fi
    sleep 0.2
done
wait "$DAEMON_PID" || true
DAEMON_PID=""
wait "$CURL_PID" || true
CURL_PID=""
grep -q '^event: bye' "$WORK/sse_drain.txt" \
    || { echo "FAIL: drained stream ended without a bye event"; cat "$WORK/sse_drain.txt"; exit 1; }

echo "== OK: watch deltas match polled answers, resync/limits/metrics live, drain clean"
echo "   report: $WORK/loadgen.json"
